//! Kernel identities: the catalogue of hardware mappings the runtime can
//! compile and serve.
//!
//! A [`KernelId`] names a mapping *by construction recipe*; its compiled
//! form is addressed by content — the [`Fingerprint`] of the netlist the
//! recipe builds. Two recipes that happen to build the same structure share
//! one cache entry.

use dsra_core::error::Result;
use dsra_core::netlist::{Fingerprint, Netlist};
use dsra_dct::{BasicDa, Cordic1, Cordic2, DaParams, DctImpl, MixedRom, SccEvenOdd, SccFull};
use dsra_me::{MeEngine, Systolic2d};

/// Which of the two arrays a kernel occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArrayKind {
    /// Distributed-arithmetic array (DCT workloads).
    Da,
    /// Motion-estimation array (block-matching workloads).
    Me,
}

impl ArrayKind {
    /// Display tag.
    pub fn tag(self) -> &'static str {
        match self {
            ArrayKind::Da => "DA",
            ArrayKind::Me => "ME",
        }
    }
}

/// The six §3 DCT mappings, as schedulable kernel recipes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DctMapping {
    /// Fig. 4 basic distributed arithmetic.
    BasicDa,
    /// Mixed-ROM decomposition.
    MixedRom,
    /// CORDIC rotator, variant 1.
    Cordic1,
    /// CORDIC rotator, variant 2.
    Cordic2,
    /// Skew-circular convolution, even/odd split.
    SccEvenOdd,
    /// Skew-circular convolution, full.
    SccFull,
}

impl DctMapping {
    /// All six mappings in Table-1 column order (plus the basic DA first,
    /// matching `dsra_dct::all_impls`).
    pub const ALL: [DctMapping; 6] = [
        DctMapping::BasicDa,
        DctMapping::MixedRom,
        DctMapping::Cordic1,
        DctMapping::Cordic2,
        DctMapping::SccEvenOdd,
        DctMapping::SccFull,
    ];

    /// The mapping's display name (identical to its `DctImpl::name`).
    pub fn name(self) -> &'static str {
        match self {
            DctMapping::BasicDa => "BASIC DA",
            DctMapping::MixedRom => "MIX ROM",
            DctMapping::Cordic1 => "CORDIC 1",
            DctMapping::Cordic2 => "CORDIC 2",
            DctMapping::SccEvenOdd => "SCC E/O",
            DctMapping::SccFull => "SCC",
        }
    }

    /// Resolves a profile name back to the mapping.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.name() == name)
    }

    /// Builds the cycle-accurate implementation.
    ///
    /// # Errors
    /// Propagates netlist construction errors.
    pub fn build(self, params: DaParams) -> Result<Box<dyn DctImpl>> {
        Ok(match self {
            DctMapping::BasicDa => Box::new(BasicDa::new(params)?),
            DctMapping::MixedRom => Box::new(MixedRom::new(params)?),
            DctMapping::Cordic1 => Box::new(Cordic1::new(params)?),
            DctMapping::Cordic2 => Box::new(Cordic2::new(params)?),
            DctMapping::SccEvenOdd => Box::new(SccEvenOdd::new(params)?),
            DctMapping::SccFull => Box::new(SccFull::new(params)?),
        })
    }
}

/// A schedulable kernel recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelId {
    /// One of the six DCT mappings on the DA array.
    Dct(DctMapping),
    /// The 2-D systolic full-search matcher on the ME array.
    MeSystolic {
        /// Block edge in pixels.
        block: u8,
    },
}

impl KernelId {
    /// Which array this kernel occupies.
    pub fn array_kind(self) -> ArrayKind {
        match self {
            KernelId::Dct(_) => ArrayKind::Da,
            KernelId::MeSystolic { .. } => ArrayKind::Me,
        }
    }

    /// Display name.
    pub fn display_name(self) -> String {
        match self {
            KernelId::Dct(m) => m.name().to_owned(),
            KernelId::MeSystolic { block } => format!("SYSTOLIC {block}x{block}"),
        }
    }

    /// Builds the recipe's netlist and returns it with its content address.
    ///
    /// # Errors
    /// Propagates netlist construction errors.
    pub fn build_netlist(self, params: DaParams) -> Result<(Netlist, Fingerprint)> {
        let nl = match self {
            KernelId::Dct(m) => m.build(params)?.netlist().clone(),
            KernelId::MeSystolic { block } => {
                Systolic2d::new(usize::from(block))?.netlist().clone()
            }
        };
        let fp = nl.fingerprint();
        Ok((nl, fp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_names_round_trip() {
        for m in DctMapping::ALL {
            assert_eq!(DctMapping::from_name(m.name()), Some(m));
            let imp = m.build(DaParams::precise()).unwrap();
            assert_eq!(imp.name(), m.name(), "recipe and impl must agree");
        }
        assert_eq!(DctMapping::from_name("nope"), None);
    }

    #[test]
    fn recipes_are_content_addressed() {
        let (_, a) = KernelId::Dct(DctMapping::BasicDa)
            .build_netlist(DaParams::precise())
            .unwrap();
        let (_, b) = KernelId::Dct(DctMapping::BasicDa)
            .build_netlist(DaParams::precise())
            .unwrap();
        assert_eq!(a, b, "same recipe, same address");
        let (_, c) = KernelId::Dct(DctMapping::SccFull)
            .build_netlist(DaParams::precise())
            .unwrap();
        assert_ne!(a, c, "different structure, different address");
    }
}
