//! Kernel identities: the catalogue of hardware mappings the runtime can
//! compile and serve.
//!
//! A [`KernelId`] names a mapping *by construction recipe*; its compiled
//! form is addressed by content — the [`Fingerprint`] of the netlist the
//! recipe builds. Two recipes that happen to build the same structure share
//! one cache entry.

use dsra_core::error::Result;
use dsra_core::netlist::{Fingerprint, Netlist};
use dsra_dct::DaParams;
use dsra_me::{MeEngine, Systolic2d};

pub use dsra_backend::DctMapping;

/// Which of the two arrays a kernel occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArrayKind {
    /// Distributed-arithmetic array (DCT workloads).
    Da,
    /// Motion-estimation array (block-matching workloads).
    Me,
}

impl ArrayKind {
    /// Display tag.
    pub fn tag(self) -> &'static str {
        match self {
            ArrayKind::Da => "DA",
            ArrayKind::Me => "ME",
        }
    }
}

/// A schedulable kernel recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelId {
    /// One of the six DCT mappings on the DA array.
    Dct(DctMapping),
    /// The 2-D systolic full-search matcher on the ME array.
    MeSystolic {
        /// Block edge in pixels.
        block: u8,
    },
}

impl KernelId {
    /// Which array this kernel occupies.
    pub fn array_kind(self) -> ArrayKind {
        match self {
            KernelId::Dct(_) => ArrayKind::Da,
            KernelId::MeSystolic { .. } => ArrayKind::Me,
        }
    }

    /// Display name.
    pub fn display_name(self) -> String {
        match self {
            KernelId::Dct(m) => m.name().to_owned(),
            KernelId::MeSystolic { block } => format!("SYSTOLIC {block}x{block}"),
        }
    }

    /// Builds the recipe's netlist and returns it with its content address.
    ///
    /// # Errors
    /// Propagates netlist construction errors.
    pub fn build_netlist(self, params: DaParams) -> Result<(Netlist, Fingerprint)> {
        let nl = match self {
            KernelId::Dct(m) => m.build(params)?.netlist().clone(),
            KernelId::MeSystolic { block } => {
                Systolic2d::new(usize::from(block))?.netlist().clone()
            }
        };
        let fp = nl.fingerprint();
        Ok((nl, fp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recipes_are_content_addressed() {
        let (_, a) = KernelId::Dct(DctMapping::BasicDa)
            .build_netlist(DaParams::precise())
            .unwrap();
        let (_, b) = KernelId::Dct(DctMapping::BasicDa)
            .build_netlist(DaParams::precise())
            .unwrap();
        assert_eq!(a, b, "same recipe, same address");
        let (_, c) = KernelId::Dct(DctMapping::SccFull)
            .build_netlist(DaParams::precise())
            .unwrap();
        assert_ne!(a, c, "different structure, different address");
    }
}
