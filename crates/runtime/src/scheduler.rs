//! Diff-aware job scheduling across the array pool.
//!
//! The scheduler walks jobs in arrival order and assigns each to the
//! compatible array where it is cheapest to run *now*: the partial
//! reconfiguration cost against the array's currently loaded bitstream
//! (`diff_bits` over the configuration bus — zero when the kernel is
//! already resident) plus the wait until that array drains its backlog, in
//! sim-cycles. Kernels therefore develop array affinity automatically, and
//! identical kernels spill to a second array only once queueing delay
//! outweighs a reconfiguration.
//!
//! Assignment is a pure, sequential function of the job list and pool
//! state; worker threads only execute the resulting per-array plans, so
//! thread scheduling can never change any decision.

use std::collections::HashMap;
use std::sync::Arc;

use dsra_core::netlist::Fingerprint;
use dsra_platform::{select, Condition, ImplProfile, SocConfig};
use dsra_power::OperatingPoint;
use dsra_video::ServiceClass;

use crate::cache::CompiledKernel;
use crate::kernel::ArrayKind;

/// Memoised partial-reconfiguration costs, keyed by unordered kernel
/// fingerprint pair.
///
/// The scheduler probes `diff_bits(loaded, target)` once per candidate
/// array per job; the kernel population of a run is tiny (a handful of
/// distinct fingerprints), so after warm-up every probe is a table lookup
/// instead of a frame-map sweep. Two invariants make the memo sound, both
/// pinned by tests: `diff_bits` is symmetric (`bitstream_props`), and
/// within one runtime a netlist fingerprint resolves to exactly one
/// compiled artifact (the cache compiles each kernel for one deterministic
/// fabric).
///
/// The runtime owns one matrix for its whole lifetime and threads it
/// through every serve, so E12's chunked discharge loop reuses diffs
/// across chunks.
#[derive(Debug, Default)]
pub struct DiffMatrix {
    entries: HashMap<(Fingerprint, Fingerprint), u64>,
    probes: u64,
    misses: u64,
}

/// Lifetime probe counters of a [`DiffMatrix`] — observability only
/// (trace `Counter` events); never consulted by any scheduling decision.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiffStats {
    /// Unequal-fingerprint probes (equal pairs short-circuit to 0 bits).
    pub probes: u64,
    /// Probes that had to sweep the frame maps (first sight of a pair).
    pub misses: u64,
}

impl DiffStats {
    /// Counter deltas against an earlier snapshot.
    pub fn since(&self, earlier: DiffStats) -> DiffStats {
        DiffStats {
            probes: self.probes - earlier.probes,
            misses: self.misses - earlier.misses,
        }
    }
}

impl DiffMatrix {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct kernel pairs memoised so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` until the first miss is memoised.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime probe counters (see [`DiffStats`]).
    pub fn stats(&self) -> DiffStats {
        DiffStats {
            probes: self.probes,
            misses: self.misses,
        }
    }

    /// Reconfiguration bits between two compiled kernels — zero for equal
    /// fingerprints, otherwise the (memoised) bitstream diff.
    pub fn bits(&mut self, from: &CompiledKernel, to: &CompiledKernel) -> u64 {
        if from.fingerprint == to.fingerprint {
            return 0;
        }
        self.probes += 1;
        let key = if from.fingerprint <= to.fingerprint {
            (from.fingerprint, to.fingerprint)
        } else {
            (to.fingerprint, from.fingerprint)
        };
        match self.entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(v) => {
                self.misses += 1;
                *v.insert(from.artifact.bitstream.diff_bits(&to.artifact.bitstream))
            }
        }
    }
}

/// Power state the runtime exposes to scheduling decisions: the battery
/// reading at serve start, the configured low-battery threshold and the
/// DVFS point in force. Policies that ignore it behave exactly as before
/// the power subsystem existed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSnapshot {
    /// Battery charge in whole percent when the serve was planned.
    pub battery_charge_pct: u8,
    /// Threshold (percent) below which energy-aware policies switch to
    /// battery-stretching behaviour.
    pub low_battery_pct: u8,
    /// Operating point the arrays run at.
    pub dvfs: OperatingPoint,
}

impl PowerSnapshot {
    /// `true` once the battery has fallen to (or below) the threshold.
    pub fn is_low(&self) -> bool {
        self.battery_charge_pct <= self.low_battery_pct
    }
}

impl Default for PowerSnapshot {
    fn default() -> Self {
        PowerSnapshot {
            battery_charge_pct: 100,
            low_battery_pct: 20,
            dvfs: OperatingPoint::NOMINAL,
        }
    }
}

/// Scheduler-visible state of one array.
#[derive(Debug)]
pub struct ArrayState {
    /// Array id (dense, DA arrays first).
    pub id: usize,
    /// Fabric kind.
    pub kind: ArrayKind,
    /// Kernel whose bitstream the array will hold after the jobs planned so
    /// far have run.
    pub loaded: Option<Arc<CompiledKernel>>,
    /// Sim-cycle at which the array finishes its planned work.
    pub free_at: u64,
    /// Number of planned jobs.
    pub pending_jobs: usize,
}

impl ArrayState {
    fn new(id: usize, kind: ArrayKind) -> Self {
        ArrayState {
            id,
            kind,
            loaded: None,
            free_at: 0,
            pending_jobs: 0,
        }
    }
}

/// Policy hook: how service classes map to platform conditions, how DCT
/// mappings are selected, and how reconfiguration cost trades against
/// queueing delay. Implement this to experiment with scheduling policies;
/// the [`DefaultPolicy`] reproduces the paper's §5 behaviour.
pub trait SchedulePolicy {
    /// Display name (E12 prints per-policy comparisons).
    fn name(&self) -> &'static str {
        "diff-aware"
    }

    /// Maps a job's service class to the run-time condition the platform
    /// policy understands, given the power state at planning time. The
    /// default honours the class as stated, turning `LowPower` into a
    /// [`Condition::LowBattery`] that carries the *measured* battery
    /// reading.
    fn condition(&self, class: ServiceClass, power: &PowerSnapshot) -> Condition {
        match class {
            ServiceClass::Quality => Condition::HighQuality,
            ServiceClass::LowPower => Condition::LowBattery {
                charge_pct: power.battery_charge_pct,
            },
            ServiceClass::Deadline(max_cycles_per_block) => Condition::Deadline {
                max_cycles_per_block,
            },
            ServiceClass::Background => Condition::MinArea,
        }
    }

    /// Picks the DCT mapping for a condition among the offered profiles.
    ///
    /// Falls back to [`Condition::HighQuality`] when the condition is
    /// unsatisfiable (e.g. a deadline no offered mapping meets), so a job is
    /// never dropped just because its preference cannot be honoured.
    fn select_mapping<'a>(
        &self,
        profiles: &'a [ImplProfile],
        condition: Condition,
    ) -> Option<&'a ImplProfile> {
        select(profiles, condition).or_else(|| select(profiles, Condition::HighQuality))
    }

    /// Cost of placing a job on `array` when loading its kernel there takes
    /// `reconfig_cycles` on the configuration bus and the array's backlog
    /// delays the start by `wait_cycles`. Lower is better; ties break
    /// towards the lower array id.
    fn assignment_cost(
        &self,
        reconfig_cycles: u64,
        wait_cycles: u64,
        array: &ArrayState,
        power: &PowerSnapshot,
    ) -> u64 {
        let _ = (array, power);
        reconfig_cycles + wait_cycles
    }

    /// `true` if idle arrays should be power-gated (leak nothing while
    /// holding no work). The default keeps them powered — exactly the
    /// pre-power-subsystem energy behaviour.
    fn power_gate_idle(&self) -> bool {
        false
    }
}

/// The default diff-aware policy: §5 condition mapping, platform `select`,
/// reconfiguration cycles + queueing delay as the cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultPolicy;

impl SchedulePolicy for DefaultPolicy {}

/// The energy-oblivious baseline E12 compares against: every job is
/// treated as a mains-powered quality job, and placement balances queue
/// depth only — the reconfiguration bits a move costs are invisible to
/// it, so kernels ping-pong between arrays and the configuration plane
/// burns joules the work never needed.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaivePolicy;

impl SchedulePolicy for NaivePolicy {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn condition(&self, _class: ServiceClass, _power: &PowerSnapshot) -> Condition {
        Condition::HighQuality
    }

    fn assignment_cost(
        &self,
        _reconfig_cycles: u64,
        wait_cycles: u64,
        _array: &ArrayState,
        _power: &PowerSnapshot,
    ) -> u64 {
        wait_cycles
    }
}

/// The energy-aware policy (E12): trades joules against deadline slack.
///
/// * Below the low-battery threshold every non-deadline job is served as
///   [`Condition::LowBattery`] — the battery is the binding constraint,
///   so the lowest-energy mapping wins (deadline jobs keep their cycle
///   budget; `select` already minimises energy within it).
/// * Reconfiguration writes are weighted above queueing delay in the
///   placement cost — a configuration bit written is joules gone, while
///   waiting merely spends slack — and the weight doubles once the
///   battery is low.
/// * Idle arrays are power-gated.
#[derive(Debug, Clone, Copy)]
pub struct EnergyAwarePolicy {
    /// Cost weight of one reconfiguration cycle vs. one wait cycle while
    /// the battery is healthy.
    pub reconfig_weight: u64,
    /// The multiplier applied to that weight once the battery is low.
    pub low_battery_factor: u64,
}

impl Default for EnergyAwarePolicy {
    fn default() -> Self {
        EnergyAwarePolicy {
            reconfig_weight: 4,
            low_battery_factor: 2,
        }
    }
}

impl SchedulePolicy for EnergyAwarePolicy {
    fn name(&self) -> &'static str {
        "energy-aware"
    }

    fn condition(&self, class: ServiceClass, power: &PowerSnapshot) -> Condition {
        if power.is_low() {
            match class {
                ServiceClass::Deadline(max_cycles_per_block) => Condition::Deadline {
                    max_cycles_per_block,
                },
                _ => Condition::LowBattery {
                    charge_pct: power.battery_charge_pct,
                },
            }
        } else {
            DefaultPolicy.condition(class, power)
        }
    }

    fn assignment_cost(
        &self,
        reconfig_cycles: u64,
        wait_cycles: u64,
        _array: &ArrayState,
        power: &PowerSnapshot,
    ) -> u64 {
        let weight = self.reconfig_weight
            * if power.is_low() {
                self.low_battery_factor
            } else {
                1
            };
        reconfig_cycles
            .saturating_mul(weight)
            .saturating_add(wait_cycles)
    }

    fn power_gate_idle(&self) -> bool {
        true
    }
}

/// One planned reconfiguration-aware placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedSlot {
    /// Chosen array id.
    pub array: usize,
    /// Bits the switch will rewrite (0 when the kernel is resident).
    pub reconfig_bits: u64,
    /// Cycles on the configuration bus for those bits.
    pub reconfig_cycles: u64,
}

/// The pool-state half of the scheduler: array states plus the diff-aware
/// argmin. Kernel selection stays in the runtime (it owns profiles and the
/// cache); this type owns *where* work lands.
#[derive(Debug)]
pub struct DiffAwareScheduler {
    arrays: Vec<ArrayState>,
    soc: SocConfig,
    diffs: DiffMatrix,
}

impl DiffAwareScheduler {
    /// A pool of `da` DA arrays followed by `me` ME arrays, all cold,
    /// pricing switches with the SoC's configuration-path constants (bus
    /// width and partial-reconfiguration support — the plan must price
    /// exactly what the per-array `ReconfigManager` will later charge).
    pub fn new(da: usize, me: usize, soc: SocConfig) -> Self {
        Self::with_memo(da, me, soc, DiffMatrix::new())
    }

    /// Like [`DiffAwareScheduler::new`] with a pre-warmed diff memo (the
    /// runtime threads one matrix through every serve; reclaim it with
    /// [`DiffAwareScheduler::into_memo`]).
    pub fn with_memo(da: usize, me: usize, soc: SocConfig, diffs: DiffMatrix) -> Self {
        let mut arrays = Vec::with_capacity(da + me);
        for _ in 0..da {
            let id = arrays.len();
            arrays.push(ArrayState::new(id, ArrayKind::Da));
        }
        for _ in 0..me {
            let id = arrays.len();
            arrays.push(ArrayState::new(id, ArrayKind::Me));
        }
        DiffAwareScheduler { arrays, soc, diffs }
    }

    /// Current array states (scheduling order).
    pub fn arrays(&self) -> &[ArrayState] {
        &self.arrays
    }

    /// Hands the diff memo back (with everything this scheduler learned).
    pub fn into_memo(self) -> DiffMatrix {
        self.diffs
    }

    /// Assigns one job arriving at `arrival_cycle` that needs `kernel` for
    /// an estimated `est_exec_cycles` of work, updating the planned pool
    /// state. Returns the placement.
    ///
    /// Reconfiguration pricing mirrors `ReconfigManager::switch_to`: free
    /// when resident, a (memoised) frame diff under partial
    /// reconfiguration, a full rewrite otherwise.
    ///
    /// # Panics
    /// Panics if the pool has no array of the kernel's kind.
    pub fn assign(
        &mut self,
        kernel: &Arc<CompiledKernel>,
        arrival_cycle: u64,
        est_exec_cycles: u64,
        policy: &dyn SchedulePolicy,
        power: &PowerSnapshot,
    ) -> PlannedSlot {
        self.assign_filtered(
            kernel,
            arrival_cycle,
            est_exec_cycles,
            policy,
            power,
            |_| true,
        )
    }

    /// Like [`DiffAwareScheduler::assign`], restricted to the arrays
    /// `available` admits — the hook the streaming layer (E13) uses to
    /// keep power-gated arrays out of placement until its elastic-pool
    /// controller wakes them.
    ///
    /// # Panics
    /// Panics if no available array of the kernel's kind exists.
    pub fn assign_filtered(
        &mut self,
        kernel: &Arc<CompiledKernel>,
        arrival_cycle: u64,
        est_exec_cycles: u64,
        policy: &dyn SchedulePolicy,
        power: &PowerSnapshot,
        available: impl Fn(usize) -> bool,
    ) -> PlannedSlot {
        let mut chosen: Option<(u64, usize, u64, u64)> = None;
        for i in 0..self.arrays.len() {
            if self.arrays[i].kind != kernel.array_kind || !available(i) {
                continue;
            }
            let bits = match &self.arrays[i].loaded {
                None => kernel.total_bits(),
                Some(resident) if resident.fingerprint == kernel.fingerprint => 0,
                Some(_) if !self.soc.partial_reconfig => kernel.total_bits(),
                Some(resident) => self.diffs.bits(resident, kernel),
            };
            let cycles = bits.div_ceil(u64::from(self.soc.cfg_bus_bits_per_cycle));
            let a = &self.arrays[i];
            let wait = a.free_at.saturating_sub(arrival_cycle);
            let cost = policy.assignment_cost(cycles, wait, a, power);
            // First minimum wins: ties break towards the lower array id.
            if chosen.is_none_or(|(best_cost, best_id, _, _)| (cost, a.id) < (best_cost, best_id)) {
                chosen = Some((cost, a.id, bits, cycles));
            }
        }
        let Some((_, id, reconfig_bits, reconfig_cycles)) = chosen else {
            panic!(
                "pool has no {} array for kernel `{}`",
                kernel.array_kind.tag(),
                kernel.name
            )
        };
        let state = &mut self.arrays[id];
        state.loaded = Some(Arc::clone(kernel));
        let start = state.free_at.max(arrival_cycle);
        state.free_at = start + reconfig_cycles + est_exec_cycles;
        state.pending_jobs += 1;
        PlannedSlot {
            array: id,
            reconfig_bits,
            reconfig_cycles,
        }
    }

    /// Corrects an array's busy-until clock to the *measured* completion
    /// cycle. [`DiffAwareScheduler::assign`] advances `free_at` by the
    /// caller's estimate; the streaming layer executes each job right
    /// after placing it and settles the clock with the cycle-accurate
    /// figure so the next placement sees the true backlog.
    ///
    /// # Panics
    /// Panics if `array` is out of range.
    pub fn settle(&mut self, array: usize, free_at: u64) {
        self.arrays[array].free_at = free_at;
    }

    /// Drops an array's resident configuration, as a full power-off does:
    /// the next kernel placed there is priced as a cold, full bitstream
    /// write. This is how the elastic pool models non-retentive power
    /// gating (DESIGN.md §9) — the wake penalty is exactly the rewrite
    /// the scheduler now charges.
    ///
    /// # Panics
    /// Panics if `array` is out of range.
    pub fn evict(&mut self, array: usize) {
        self.arrays[array].loaded = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsra_core::fabric::{Fabric, MeshSpec};
    use dsra_core::netlist::Netlist;
    use dsra_core::prelude::{AbsDiffMode, ClusterCfg};
    use dsra_platform::compile_netlist;

    fn kernel(mode: AbsDiffMode) -> Arc<CompiledKernel> {
        let mut nl = Netlist::new("k");
        let a = nl.input("a", 8).unwrap();
        let b = nl.input("b", 8).unwrap();
        let y = nl.output("y", 8).unwrap();
        let ad = nl
            .cluster("ad", ClusterCfg::AbsDiff { width: 8, mode })
            .unwrap();
        nl.connect((a, "out"), (ad, "a")).unwrap();
        nl.connect((b, "out"), (ad, "b")).unwrap();
        nl.connect((ad, "y"), (y, "in")).unwrap();
        let fabric = Fabric::me_array(8, 8, MeshSpec::mixed());
        Arc::new(CompiledKernel {
            name: format!("{mode:?}"),
            fingerprint: nl.fingerprint(),
            array_kind: ArrayKind::Me,
            artifact: compile_netlist(&nl, &fabric).unwrap(),
            split: dsra_tech::EnergySplit {
                dyn_energy_per_cycle: 10.0,
                leak_power: 5.0,
            },
            op_mix: dsra_sim::ExecPlan::compile(&nl).unwrap().op_mix(),
        })
    }

    fn snap() -> PowerSnapshot {
        PowerSnapshot::default()
    }

    #[test]
    fn resident_kernel_wins_over_cold_array() {
        let mut sched = DiffAwareScheduler::new(0, 2, SocConfig::default());
        let k = kernel(AbsDiffMode::AbsDiff);
        // First job cold-starts array 0 (tie on cost → lowest id).
        let p0 = sched.assign(&k, 0, 10, &DefaultPolicy, &snap());
        assert_eq!(p0.array, 0);
        assert_eq!(p0.reconfig_bits, k.total_bits());
        // Second job with the same kernel: array 0 is loaded, and with the
        // backlog drained by the late arrival the switch is free.
        let p1 = sched.assign(&k, 1 << 20, 10, &DefaultPolicy, &snap());
        assert_eq!(p1.array, 0);
        assert_eq!(p1.reconfig_bits, 0);
    }

    #[test]
    fn queueing_delay_eventually_spills_to_a_second_array() {
        let mut sched = DiffAwareScheduler::new(0, 2, SocConfig::default());
        let k = kernel(AbsDiffMode::AbsDiff);
        // A burst of same-kernel jobs all arriving at cycle 0: affinity
        // holds until array 0's queue costs more than a cold start of
        // array 1, then the load balances.
        let cold_cycles = k.total_bits().div_ceil(32);
        let mut spilled = false;
        for _ in 0..200 {
            let p = sched.assign(&k, 0, cold_cycles / 4 + 1, &DefaultPolicy, &snap());
            if p.array == 1 {
                spilled = true;
                break;
            }
        }
        assert!(spilled, "load balancing must engage under a burst");
    }

    #[test]
    fn different_kernel_prefers_the_cheaper_diff() {
        let mut sched = DiffAwareScheduler::new(0, 2, SocConfig::default());
        let ka = kernel(AbsDiffMode::AbsDiff);
        let kb = kernel(AbsDiffMode::Sub);
        sched.assign(&ka, 0, 0, &DefaultPolicy, &snap()); // array 0 holds ka
                                                          // Arriving after array 0 drained: a partial reconfiguration against
                                                          // ka beats a full cold write onto empty array 1.
        let p = sched.assign(&kb, 1 << 20, 0, &DefaultPolicy, &snap());
        assert_eq!(p.array, 0);
        assert!(p.reconfig_bits > 0);
        assert!(p.reconfig_bits < kb.total_bits());
    }

    #[test]
    fn without_partial_reconfig_every_switch_is_a_full_rewrite() {
        // The plan must price exactly what ReconfigManager::switch_to will
        // charge: with partial reconfiguration off, a kernel change costs
        // the full target bitstream (a resident kernel is still free).
        let soc = SocConfig {
            partial_reconfig: false,
            ..Default::default()
        };
        let mut sched = DiffAwareScheduler::new(0, 1, soc);
        let ka = kernel(AbsDiffMode::AbsDiff);
        let kb = kernel(AbsDiffMode::Sub);
        sched.assign(&ka, 0, 0, &DefaultPolicy, &snap());
        let resident = sched.assign(&ka, 1 << 20, 0, &DefaultPolicy, &snap());
        assert_eq!(resident.reconfig_bits, 0);
        let switch = sched.assign(&kb, 2 << 20, 0, &DefaultPolicy, &snap());
        assert_eq!(switch.reconfig_bits, kb.total_bits());
    }

    #[test]
    fn kinds_are_respected() {
        let mut sched = DiffAwareScheduler::new(1, 1, SocConfig::default());
        let k = kernel(AbsDiffMode::AbsDiff); // an ME kernel
        let p = sched.assign(&k, 0, 0, &DefaultPolicy, &snap());
        assert_eq!(sched.arrays()[p.array].kind, ArrayKind::Me);
    }

    #[test]
    fn diff_matrix_memoises_symmetric_pairs() {
        let ka = kernel(AbsDiffMode::AbsDiff);
        let kb = kernel(AbsDiffMode::Sub);
        let mut m = DiffMatrix::new();
        // Equal fingerprints are free and never stored.
        assert_eq!(m.bits(&ka, &ka), 0);
        assert!(m.is_empty());
        // A real pair is computed once, agrees with the bitstream diff in
        // both directions, and occupies one unordered entry.
        let expected = ka.artifact.bitstream.diff_bits(&kb.artifact.bitstream);
        assert!(expected > 0);
        assert_eq!(m.bits(&ka, &kb), expected);
        assert_eq!(m.bits(&kb, &ka), expected);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn scheduler_memo_survives_round_trips() {
        // The runtime threads one memo through every serve: handing it to a
        // scheduler and reclaiming it must keep what was learned.
        let ka = kernel(AbsDiffMode::AbsDiff);
        let kb = kernel(AbsDiffMode::Sub);
        let mut sched = DiffAwareScheduler::new(0, 1, SocConfig::default());
        sched.assign(&ka, 0, 0, &DefaultPolicy, &snap());
        sched.assign(&kb, 1 << 20, 0, &DefaultPolicy, &snap());
        let memo = sched.into_memo();
        assert_eq!(memo.len(), 1, "one kernel pair was diffed");
        let mut again = DiffAwareScheduler::with_memo(0, 1, SocConfig::default(), memo);
        again.assign(&ka, 0, 0, &DefaultPolicy, &snap());
        again.assign(&kb, 1 << 20, 0, &DefaultPolicy, &snap());
        assert_eq!(again.into_memo().len(), 1, "warm pair must not recompute");
    }

    #[test]
    fn filtered_assignment_skips_unavailable_arrays_and_eviction_goes_cold() {
        let mut sched = DiffAwareScheduler::new(0, 2, SocConfig::default());
        let k = kernel(AbsDiffMode::AbsDiff);
        // Array 0 is masked out (gated): the cold start lands on array 1
        // even though 0 would win the tie.
        let p = sched.assign_filtered(&k, 0, 10, &DefaultPolicy, &snap(), |i| i != 0);
        assert_eq!(p.array, 1);
        assert_eq!(p.reconfig_bits, k.total_bits());
        // Resident on 1, a later arrival is free there…
        let p = sched.assign(&k, 1 << 20, 10, &DefaultPolicy, &snap());
        assert_eq!((p.array, p.reconfig_bits), (1, 0));
        // …until eviction models the power-off: residency is gone, both
        // arrays are equally cold (the tie reverts to array 0) and the
        // kernel pays the full write again.
        sched.evict(1);
        let p = sched.assign(&k, 2 << 20, 10, &DefaultPolicy, &snap());
        assert_eq!(p.array, 0);
        assert_eq!(p.reconfig_bits, k.total_bits());
    }

    #[test]
    fn settle_overrides_the_estimated_clock() {
        let mut sched = DiffAwareScheduler::new(0, 1, SocConfig::default());
        let k = kernel(AbsDiffMode::AbsDiff);
        sched.assign(&k, 0, 1_000_000, &DefaultPolicy, &snap());
        let estimated = sched.arrays()[0].free_at;
        assert!(estimated >= 1_000_000);
        // The measured job ran much shorter than estimated; the settled
        // clock is what the next placement sees.
        sched.settle(0, 500);
        assert_eq!(sched.arrays()[0].free_at, 500);
        let p = sched.assign(&k, 400, 10, &DefaultPolicy, &snap());
        assert_eq!(p.array, 0);
    }

    #[test]
    fn naive_policy_ignores_reconfig_and_battery() {
        use dsra_video::ServiceClass;
        let naive = NaivePolicy;
        let low = PowerSnapshot {
            battery_charge_pct: 5,
            ..Default::default()
        };
        // Every class flattens to HighQuality, battery notwithstanding.
        for class in [
            ServiceClass::Quality,
            ServiceClass::LowPower,
            ServiceClass::Deadline(16),
            ServiceClass::Background,
        ] {
            assert_eq!(naive.condition(class, &low), Condition::HighQuality);
        }
        // A mountain of reconfiguration bits costs it nothing.
        let state = ArrayState::new(0, ArrayKind::Da);
        assert_eq!(naive.assignment_cost(1 << 30, 7, &state, &low), 7);
        assert!(!naive.power_gate_idle());
    }

    #[test]
    fn energy_aware_policy_reacts_to_the_battery() {
        use dsra_video::ServiceClass;
        let policy = EnergyAwarePolicy::default();
        let healthy = PowerSnapshot {
            battery_charge_pct: 80,
            ..Default::default()
        };
        let low = PowerSnapshot {
            battery_charge_pct: 12,
            ..Default::default()
        };
        // Healthy battery: classes are honoured as stated.
        assert_eq!(
            policy.condition(ServiceClass::Quality, &healthy),
            Condition::HighQuality
        );
        // Low battery: quality and background jobs bend to the battery,
        // carrying the measured reading…
        assert_eq!(
            policy.condition(ServiceClass::Quality, &low),
            Condition::LowBattery { charge_pct: 12 }
        );
        assert_eq!(
            policy.condition(ServiceClass::Background, &low),
            Condition::LowBattery { charge_pct: 12 }
        );
        // …while deadline slack is still honoured.
        assert_eq!(
            policy.condition(ServiceClass::Deadline(16), &low),
            Condition::Deadline {
                max_cycles_per_block: 16
            }
        );
        // Reconfiguration is weighted above waiting, more so when low.
        let state = ArrayState::new(0, ArrayKind::Da);
        let healthy_cost = policy.assignment_cost(100, 10, &state, &healthy);
        let low_cost = policy.assignment_cost(100, 10, &state, &low);
        assert!(healthy_cost > 100 + 10);
        assert!(low_cost > healthy_cost);
        assert!(policy.power_gate_idle());
    }
}
