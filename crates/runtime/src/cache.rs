//! Content-addressed bitstream cache.
//!
//! Compiled `(placement, routing, bitstream)` artifacts are keyed by the
//! [`Fingerprint`] of the source netlist plus the target fabric's geometry,
//! so the ~29 ms place-and-route pipeline is paid once per *distinct* kernel
//! structure — not once per job, and not even once per kernel *name*: two
//! recipes that build the same netlist share one entry.

use std::collections::HashMap;
use std::sync::Arc;

use dsra_core::error::Result;
use dsra_core::fabric::Fabric;
use dsra_core::netlist::{Fingerprint, Netlist};
use dsra_platform::{compile_netlist, profiling_activity, CompiledArtifact};
use dsra_sim::{ExecPlan, OpMix};
use dsra_tech::{dsra_cost, EnergySplit, TechModel};

use crate::kernel::ArrayKind;

/// A cached compiled kernel, shared between the scheduler and the array
/// workers via `Arc`.
#[derive(Debug)]
pub struct CompiledKernel {
    /// Display name of the first recipe that compiled this entry.
    pub name: String,
    /// Content address of the source netlist.
    pub fingerprint: Fingerprint,
    /// Which array the kernel was compiled for.
    pub array_kind: ArrayKind,
    /// The placement, routing and bitstream.
    pub artifact: CompiledArtifact,
    /// Static/dynamic energy split under the profiling stimulus — what
    /// the energy accounts integrate per cycle while this kernel runs
    /// (and leak per cycle while it merely stays loaded).
    pub split: EnergySplit,
    /// Static per-cycle op-class mix of the kernel's execution plan —
    /// what one busy cycle on this kernel executes. The attribution
    /// profiler (`dsra-profile`) splits array-busy cycles across op
    /// classes with this, so per-op costs never require re-simulation.
    pub op_mix: OpMix,
}

impl CompiledKernel {
    /// Total configuration bits of the kernel's bitstream.
    pub fn total_bits(&self) -> u64 {
        self.artifact.bitstream.total_bits()
    }
}

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in `[0, 1]` (1.0 for an untouched cache).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            return 1.0;
        }
        self.hits as f64 / self.lookups() as f64
    }

    /// Counter-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

/// Key: netlist content address + fabric geometry (the same kernel compiled
/// for two differently sized arrays is two artifacts).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    fingerprint: Fingerprint,
    fabric: String,
}

fn fabric_key(fabric: &Fabric) -> String {
    format!(
        "{}:{}x{}:{}",
        fabric.name(),
        fabric.width(),
        fabric.height(),
        fabric.mesh().channel_bits()
    )
}

/// The content-addressed artifact store.
#[derive(Debug, Default)]
pub struct BitstreamCache {
    entries: HashMap<CacheKey, Arc<CompiledKernel>>,
    stats: CacheStats,
    /// Technology constants pricing each compiled kernel's energy split.
    model: TechModel,
}

impl BitstreamCache {
    /// An empty cache pricing kernels with the default technology model.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache with explicit technology constants.
    pub fn with_model(model: TechModel) -> Self {
        BitstreamCache {
            model,
            ..Default::default()
        }
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of distinct compiled kernels held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every compiled kernel, sorted by `(fingerprint, fabric)` so
    /// iteration order is deterministic regardless of compile order
    /// (the map behind the cache is hashed).
    pub fn kernels_sorted(&self) -> Vec<&Arc<CompiledKernel>> {
        let mut entries: Vec<(&CacheKey, &Arc<CompiledKernel>)> = self.entries.iter().collect();
        entries.sort_by(|(a, _), (b, _)| {
            a.fingerprint
                .cmp(&b.fingerprint)
                .then_with(|| a.fabric.cmp(&b.fabric))
        });
        entries.into_iter().map(|(_, k)| k).collect()
    }

    /// Looks the fingerprint up for `fabric`; on a miss, builds the netlist
    /// via `netlist` and runs the compile pipeline once.
    ///
    /// The netlist thunk lets callers that already know a kernel's
    /// fingerprint (the runtime memoises recipe → fingerprint) skip netlist
    /// construction entirely on the hot path.
    ///
    /// # Errors
    /// Propagates netlist construction, placement or routing failures.
    pub fn get_or_compile(
        &mut self,
        fingerprint: Fingerprint,
        name: &str,
        array_kind: ArrayKind,
        fabric: &Fabric,
        netlist: impl FnOnce() -> Result<Netlist>,
    ) -> Result<Arc<CompiledKernel>> {
        let key = CacheKey {
            fingerprint,
            fabric: fabric_key(fabric),
        };
        if let Some(hit) = self.entries.get(&key) {
            self.stats.hits += 1;
            return Ok(Arc::clone(hit));
        }
        self.stats.misses += 1;
        let nl = netlist()?;
        debug_assert_eq!(
            nl.fingerprint(),
            fingerprint,
            "cache key must be the netlist's own content address"
        );
        let artifact = compile_netlist(&nl, fabric)?;
        // Price the kernel once, at compile time: the same profiling
        // stimulus `dsra_platform::profile_impl` measures under, so the
        // energy the accounts integrate is the energy the policies
        // selected on.
        let activity = profiling_activity(&nl)?;
        let split = dsra_cost(&nl, &artifact.routing.stats, &activity, &self.model).energy_split();
        let op_mix = ExecPlan::compile(&nl)?.op_mix();
        let kernel = Arc::new(CompiledKernel {
            name: name.to_owned(),
            fingerprint,
            array_kind,
            artifact,
            split,
            op_mix,
        });
        self.entries.insert(key, Arc::clone(&kernel));
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsra_core::fabric::MeshSpec;
    use dsra_core::prelude::*;

    fn tiny_netlist(mode: AbsDiffMode) -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 8).unwrap();
        let b = nl.input("b", 8).unwrap();
        let y = nl.output("y", 8).unwrap();
        let ad = nl
            .cluster("ad", ClusterCfg::AbsDiff { width: 8, mode })
            .unwrap();
        nl.connect((a, "out"), (ad, "a")).unwrap();
        nl.connect((b, "out"), (ad, "b")).unwrap();
        nl.connect((ad, "y"), (y, "in")).unwrap();
        nl
    }

    #[test]
    fn compile_paid_once_per_distinct_kernel() {
        let fabric = Fabric::me_array(8, 8, MeshSpec::mixed());
        let mut cache = BitstreamCache::new();
        let nl = tiny_netlist(AbsDiffMode::AbsDiff);
        let fp = nl.fingerprint();
        let first = cache
            .get_or_compile(fp, "sad", ArrayKind::Me, &fabric, || {
                Ok(tiny_netlist(AbsDiffMode::AbsDiff))
            })
            .unwrap();
        for _ in 0..10 {
            let again = cache
                .get_or_compile(fp, "sad", ArrayKind::Me, &fabric, || {
                    panic!("hit path must not rebuild the netlist")
                })
                .unwrap();
            assert!(Arc::ptr_eq(&first, &again), "shared artifact");
        }
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 10,
                misses: 1
            }
        );
        assert_eq!(cache.len(), 1);

        // A structurally different kernel is a new entry…
        let other = tiny_netlist(AbsDiffMode::Sub);
        let ofp = other.fingerprint();
        cache
            .get_or_compile(ofp, "sub", ArrayKind::Me, &fabric, || Ok(other.clone()))
            .unwrap();
        assert_eq!(cache.len(), 2);
        // …and the same kernel on a different fabric is, too.
        let bigger = Fabric::me_array(10, 10, MeshSpec::mixed());
        cache
            .get_or_compile(fp, "sad", ArrayKind::Me, &bigger, || {
                Ok(tiny_netlist(AbsDiffMode::AbsDiff))
            })
            .unwrap();
        assert_eq!(cache.len(), 3);
        assert!((cache.stats().hit_rate() - 10.0 / 13.0).abs() < 1e-12);
    }
}
