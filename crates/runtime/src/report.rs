//! Runtime metrics: what a serve run measured, rendered for humans and as
//! machine-readable JSON.
//!
//! Everything here is a pure function of the (deterministic) serve result,
//! so two runs with the same seed render byte-identical reports — the
//! property the E11 acceptance gate checks.

use dsra_power::OperatingPoint;

use crate::cache::CacheStats;
use crate::kernel::ArrayKind;

/// Per-array aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayReport {
    /// Array id.
    pub id: usize,
    /// Fabric kind.
    pub kind: ArrayKind,
    /// Jobs executed.
    pub jobs: usize,
    /// Cycles spent executing payloads.
    pub exec_cycles: u64,
    /// Cycles spent on the configuration bus.
    pub reconfig_cycles: u64,
    /// Bits rewritten by reconfigurations.
    pub reconfig_bits: u64,
    /// Switches that actually wrote bits.
    pub reconfig_events: usize,
    /// Busy fraction of the makespan, in percent.
    pub utilization_pct: f64,
    /// Activity-based dynamic energy this array burned (joules).
    pub dynamic_j: f64,
    /// Leakage energy, active and idle (joules).
    pub static_j: f64,
    /// Configuration-plane write energy (joules).
    pub reconfig_j: f64,
    /// Idle cycles spent power-gated (leaking nothing).
    pub gated_cycles: u64,
}

impl ArrayReport {
    /// Everything this array drained from the battery.
    pub fn energy_j(&self) -> f64 {
        self.dynamic_j + self.static_j + self.reconfig_j
    }
}

/// One served job, in job-id order.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Job id.
    pub id: u32,
    /// Payload kind tag (`dct` / `me` / `encode`).
    pub kind: &'static str,
    /// Array that served it.
    pub array: usize,
    /// Kernel that served it.
    pub kernel: String,
    /// Bits the switch before this job rewrote.
    pub reconfig_bits: u64,
    /// Payload sim-cycles.
    pub exec_cycles: u64,
    /// Cycle the job arrived at (copied from its spec, so serve latency —
    /// `end_cycle - arrival_cycle` — is computable from the outcome alone).
    pub arrival_cycle: u64,
    /// Start cycle (after arrival and queueing).
    pub start_cycle: u64,
    /// Completion cycle.
    pub end_cycle: u64,
    /// Deterministic output digest.
    pub checksum: u64,
    /// Energy attributable to this job (execution dynamic + leakage over
    /// its busy window + its reconfiguration write), in joules.
    pub energy_j: f64,
}

/// One point of the battery trajectory: the charge left after a job's
/// energy was drained, in completion order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatterySample {
    /// Job id.
    pub job: u32,
    /// Battery charge after this job, saturating at empty.
    pub charge_j: f64,
}

/// Battery state over one serve: per-job samples plus the idle leakage
/// no single job owns.
#[derive(Debug, Clone, PartialEq)]
pub struct BatteryTrajectory {
    /// Design capacity of the battery.
    pub capacity_j: f64,
    /// Charge when the serve was planned.
    pub start_j: f64,
    /// Charge after the whole serve (jobs + idle leakage), saturating.
    pub end_j: f64,
    /// Idle-array leakage drained on top of the per-job energies.
    pub idle_drain_j: f64,
    /// Per-job battery readings in completion (`end_cycle`, id) order.
    pub samples: Vec<BatterySample>,
}

/// Energy metrics of one serve — the power subsystem's half of the
/// report (DESIGN.md §7).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// DVFS operating point the serve ran at.
    pub point: OperatingPoint,
    /// Activity-based dynamic energy (joules).
    pub dynamic_j: f64,
    /// Leakage energy, active and idle (joules).
    pub static_j: f64,
    /// Configuration-plane write energy (joules).
    pub reconfig_j: f64,
    /// Idle cycles that leaked nothing because the policy gates idle
    /// arrays.
    pub gated_cycles: u64,
    /// Mean joules per served job (total / jobs).
    pub joules_per_job: f64,
    /// Frames encoded by the mix's encode-GOP jobs (exact count).
    pub encoded_frames: u64,
    /// Encoded frames per joule (0 when the mix had no encode jobs).
    pub frames_per_joule: f64,
    /// Battery state over the serve.
    pub battery: BatteryTrajectory,
}

impl EnergyReport {
    /// Total joules the serve drained.
    pub fn total_j(&self) -> f64 {
        self.dynamic_j + self.static_j + self.reconfig_j
    }
}

/// The full serve report.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeReport {
    /// Execution backend that produced the outcomes (`array` / `golden` /
    /// `check`). Reported in the JSON summary; deliberately *not* part of
    /// the digest — the backend contract says outcomes are byte-identical
    /// across backends, so the digest must not vary with the backend.
    pub backend: &'static str,
    /// Jobs served.
    pub jobs: usize,
    /// DCT-block jobs.
    pub dct_jobs: usize,
    /// Motion-search jobs.
    pub me_jobs: usize,
    /// Encode-GOP jobs.
    pub encode_jobs: usize,
    /// Sim-cycle at which the last job completed.
    pub makespan_cycles: u64,
    /// Throughput: jobs per million sim-cycles.
    pub jobs_per_megacycle: f64,
    /// Bitstream-cache counters for this serve call.
    pub cache: CacheStats,
    /// Total bits rewritten across all arrays.
    pub total_reconfig_bits: u64,
    /// Switches that actually wrote bits.
    pub reconfig_events: usize,
    /// Energy and battery metrics.
    pub energy: EnergyReport,
    /// Per-array aggregates (array-id order).
    pub arrays: Vec<ArrayReport>,
    /// Per-job outcomes (job-id order).
    pub outcomes: Vec<JobOutcome>,
}

impl RuntimeReport {
    /// Deterministic digest over every job outcome *and* the energy
    /// columns — one number that changes if any job's placement, cost,
    /// payload result, attributed energy or the battery trajectory
    /// changes.
    pub fn digest(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut mix = |v: u64| {
            h = dsra_core::rng::fnv1a_fold(h, v);
        };
        for o in &self.outcomes {
            mix(u64::from(o.id));
            mix(o.array as u64);
            mix(o.reconfig_bits);
            mix(o.exec_cycles);
            mix(o.start_cycle);
            mix(o.end_cycle);
            mix(o.checksum);
            mix(o.energy_j.to_bits());
        }
        mix(self.energy.dynamic_j.to_bits());
        mix(self.energy.static_j.to_bits());
        mix(self.energy.reconfig_j.to_bits());
        mix(self.energy.gated_cycles);
        mix(self.energy.battery.start_j.to_bits());
        mix(self.energy.battery.end_j.to_bits());
        mix(self.energy.battery.idle_drain_j.to_bits());
        for s in &self.energy.battery.samples {
            mix(u64::from(s.job));
            mix(s.charge_j.to_bits());
        }
        h
    }

    /// Per-job serve latencies (arrival → completion, sim-cycles), sorted
    /// ascending — queueing delay included, which is what an SLO sees.
    pub fn sorted_latencies(&self) -> Vec<u64> {
        let mut l: Vec<u64> = self
            .outcomes
            .iter()
            .map(|o| o.end_cycle - o.arrival_cycle)
            .collect();
        l.sort_unstable();
        l
    }

    /// Human-readable summary (stable across runs for the same seed).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "jobs served        : {} ({} dct, {} me, {} encode)\n",
            self.jobs, self.dct_jobs, self.me_jobs, self.encode_jobs
        ));
        s.push_str(&format!(
            "makespan           : {} sim-cycles ({:.2} jobs/Mcycle)\n",
            self.makespan_cycles, self.jobs_per_megacycle
        ));
        s.push_str(&format!(
            "bitstream cache    : {} lookups, {} hits, {} misses ({:.2}% hit rate)\n",
            self.cache.lookups(),
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0
        ));
        s.push_str(&format!(
            "reconfiguration    : {} bits over {} events\n",
            self.total_reconfig_bits, self.reconfig_events
        ));
        let e = &self.energy;
        s.push_str(&format!(
            "energy @ {:<9}: {:.1} J ({:.1} dynamic, {:.1} static, {:.1} reconfig)\n",
            e.point.name,
            e.total_j(),
            e.dynamic_j,
            e.static_j,
            e.reconfig_j
        ));
        s.push_str(&format!(
            "efficiency         : {:.2} J/job, {:.6} frames/J, {} gated cycles\n",
            e.joules_per_job, e.frames_per_joule, e.gated_cycles
        ));
        s.push_str(&format!(
            "battery            : {:.1} -> {:.1} J of {:.1} ({} samples, {:.1} J idle drain)\n",
            e.battery.start_j,
            e.battery.end_j,
            e.battery.capacity_j,
            e.battery.samples.len(),
            e.battery.idle_drain_j
        ));
        s.push_str(
            "array  kind  jobs   exec-cycles  reconfig-bits  events  util%      energy-J  gated\n",
        );
        for a in &self.arrays {
            s.push_str(&format!(
                "{:>5}  {:<4}  {:>4}  {:>12}  {:>13}  {:>6}  {:>5.1}  {:>12.1}  {:>5}\n",
                a.id,
                a.kind.tag(),
                a.jobs,
                a.exec_cycles,
                a.reconfig_bits,
                a.reconfig_events,
                a.utilization_pct,
                a.energy_j(),
                a.gated_cycles
            ));
        }
        s.push_str(&format!("outcome digest     : {:#018x}\n", self.digest()));
        s
    }

    /// Machine-readable JSON summary (the `BENCH_runtime.json` payload).
    pub fn to_json(&self, experiment: &str) -> String {
        self.render_json(experiment, None)
    }

    /// Like [`RuntimeReport::to_json`] with the serve's wall-clock phase
    /// timings appended as a `phases` object (`planning_ms` / `exec_ms`) —
    /// what `soc_serve --json` writes so `BENCH_runtime.json` tracks the
    /// perf trajectory. Timings are diagnostics: the rest of the document
    /// (and the digest) stays byte-identical per seed.
    pub fn to_json_with_phases(&self, experiment: &str, phases: crate::PhaseTimings) -> String {
        self.render_json(experiment, Some(phases))
    }

    fn render_json(&self, experiment: &str, phases: Option<crate::PhaseTimings>) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"experiment\": \"{experiment}\",\n"));
        s.push_str(&format!("  \"backend\": \"{}\",\n", self.backend));
        s.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        s.push_str(&format!("  \"dct_jobs\": {},\n", self.dct_jobs));
        s.push_str(&format!("  \"me_jobs\": {},\n", self.me_jobs));
        s.push_str(&format!("  \"encode_jobs\": {},\n", self.encode_jobs));
        s.push_str(&format!(
            "  \"makespan_cycles\": {},\n",
            self.makespan_cycles
        ));
        s.push_str(&format!(
            "  \"jobs_per_megacycle\": {:.4},\n",
            self.jobs_per_megacycle
        ));
        s.push_str(&format!(
            "  \"cache\": {{\"lookups\": {}, \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.6}}},\n",
            self.cache.lookups(),
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate()
        ));
        s.push_str(&format!(
            "  \"total_reconfig_bits\": {},\n",
            self.total_reconfig_bits
        ));
        s.push_str(&format!(
            "  \"reconfig_events\": {},\n",
            self.reconfig_events
        ));
        s.push_str(&format!(
            "  \"outcome_digest\": \"{:#018x}\",\n",
            self.digest()
        ));
        // Serve-latency percentiles (nearest-rank over arrival → completion
        // cycles) — the queueing-aware view the SLO layer (DESIGN.md §9)
        // reads off this file.
        let lat = self.sorted_latencies();
        let pct = |p: f64| -> u64 {
            if lat.is_empty() {
                return 0;
            }
            let rank = ((p / 100.0) * lat.len() as f64).ceil() as usize;
            lat[rank.clamp(1, lat.len()) - 1]
        };
        s.push_str(&format!(
            "  \"latency\": {{\"p50_cycles\": {}, \"p99_cycles\": {}}},\n",
            pct(50.0),
            pct(99.0)
        ));
        if let Some(p) = phases {
            s.push_str(&format!(
                "  \"phases\": {{\"planning_ms\": {:.3}, \"exec_ms\": {:.3}}},\n",
                p.planning_ms, p.exec_ms
            ));
        }
        let e = &self.energy;
        s.push_str(&format!(
            "  \"energy\": {{\"point\": \"{}\", \"total_j\": {:.6}, \"dynamic_j\": {:.6}, \
             \"static_j\": {:.6}, \"reconfig_j\": {:.6}, \"gated_cycles\": {}, \
             \"joules_per_job\": {:.6}, \"encoded_frames\": {}, \"frames_per_joule\": {:.6}}},\n",
            e.point.name,
            e.total_j(),
            e.dynamic_j,
            e.static_j,
            e.reconfig_j,
            e.gated_cycles,
            e.joules_per_job,
            e.encoded_frames,
            e.frames_per_joule
        ));
        s.push_str(&format!(
            "  \"battery\": {{\"capacity_j\": {:.6}, \"start_j\": {:.6}, \"end_j\": {:.6}, \
             \"idle_drain_j\": {:.6}, \"trajectory\": [",
            e.battery.capacity_j, e.battery.start_j, e.battery.end_j, e.battery.idle_drain_j
        ));
        for (i, sample) in e.battery.samples.iter().enumerate() {
            s.push_str(&format!(
                "{}{{\"job\": {}, \"charge_j\": {:.6}}}",
                if i == 0 { "" } else { ", " },
                sample.job,
                sample.charge_j
            ));
        }
        s.push_str("]},\n");
        s.push_str("  \"arrays\": [\n");
        for (i, a) in self.arrays.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": {}, \"kind\": \"{}\", \"jobs\": {}, \"exec_cycles\": {}, \
                 \"reconfig_bits\": {}, \"reconfig_events\": {}, \"utilization_pct\": {:.2}, \
                 \"energy_j\": {:.6}, \"dynamic_j\": {:.6}, \"static_j\": {:.6}, \
                 \"reconfig_j\": {:.6}, \"gated_cycles\": {}}}{}\n",
                a.id,
                a.kind.tag(),
                a.jobs,
                a.exec_cycles,
                a.reconfig_bits,
                a.reconfig_events,
                a.utilization_pct,
                a.energy_j(),
                a.dynamic_j,
                a.static_j,
                a.reconfig_j,
                a.gated_cycles,
                if i + 1 == self.arrays.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}
