//! Runtime metrics: what a serve run measured, rendered for humans and as
//! machine-readable JSON.
//!
//! Everything here is a pure function of the (deterministic) serve result,
//! so two runs with the same seed render byte-identical reports — the
//! property the E11 acceptance gate checks.

use crate::cache::CacheStats;
use crate::kernel::ArrayKind;

/// Per-array aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayReport {
    /// Array id.
    pub id: usize,
    /// Fabric kind.
    pub kind: ArrayKind,
    /// Jobs executed.
    pub jobs: usize,
    /// Cycles spent executing payloads.
    pub exec_cycles: u64,
    /// Cycles spent on the configuration bus.
    pub reconfig_cycles: u64,
    /// Bits rewritten by reconfigurations.
    pub reconfig_bits: u64,
    /// Switches that actually wrote bits.
    pub reconfig_events: usize,
    /// Busy fraction of the makespan, in percent.
    pub utilization_pct: f64,
}

/// One served job, in job-id order.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Job id.
    pub id: u32,
    /// Payload kind tag (`dct` / `me` / `encode`).
    pub kind: &'static str,
    /// Array that served it.
    pub array: usize,
    /// Kernel that served it.
    pub kernel: String,
    /// Bits the switch before this job rewrote.
    pub reconfig_bits: u64,
    /// Payload sim-cycles.
    pub exec_cycles: u64,
    /// Start cycle (after arrival and queueing).
    pub start_cycle: u64,
    /// Completion cycle.
    pub end_cycle: u64,
    /// Deterministic output digest.
    pub checksum: u64,
}

/// The full serve report.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeReport {
    /// Jobs served.
    pub jobs: usize,
    /// DCT-block jobs.
    pub dct_jobs: usize,
    /// Motion-search jobs.
    pub me_jobs: usize,
    /// Encode-GOP jobs.
    pub encode_jobs: usize,
    /// Sim-cycle at which the last job completed.
    pub makespan_cycles: u64,
    /// Throughput: jobs per million sim-cycles.
    pub jobs_per_megacycle: f64,
    /// Bitstream-cache counters for this serve call.
    pub cache: CacheStats,
    /// Total bits rewritten across all arrays.
    pub total_reconfig_bits: u64,
    /// Switches that actually wrote bits.
    pub reconfig_events: usize,
    /// Per-array aggregates (array-id order).
    pub arrays: Vec<ArrayReport>,
    /// Per-job outcomes (job-id order).
    pub outcomes: Vec<JobOutcome>,
}

impl RuntimeReport {
    /// Deterministic digest over every job outcome — one number that
    /// changes if any job's placement, cost or payload result changes.
    pub fn digest(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut mix = |v: u64| {
            h = dsra_core::rng::fnv1a_fold(h, v);
        };
        for o in &self.outcomes {
            mix(u64::from(o.id));
            mix(o.array as u64);
            mix(o.reconfig_bits);
            mix(o.exec_cycles);
            mix(o.start_cycle);
            mix(o.end_cycle);
            mix(o.checksum);
        }
        h
    }

    /// Human-readable summary (stable across runs for the same seed).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "jobs served        : {} ({} dct, {} me, {} encode)\n",
            self.jobs, self.dct_jobs, self.me_jobs, self.encode_jobs
        ));
        s.push_str(&format!(
            "makespan           : {} sim-cycles ({:.2} jobs/Mcycle)\n",
            self.makespan_cycles, self.jobs_per_megacycle
        ));
        s.push_str(&format!(
            "bitstream cache    : {} lookups, {} hits, {} misses ({:.2}% hit rate)\n",
            self.cache.lookups(),
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0
        ));
        s.push_str(&format!(
            "reconfiguration    : {} bits over {} events\n",
            self.total_reconfig_bits, self.reconfig_events
        ));
        s.push_str("array  kind  jobs   exec-cycles  reconfig-bits  events  util%\n");
        for a in &self.arrays {
            s.push_str(&format!(
                "{:>5}  {:<4}  {:>4}  {:>12}  {:>13}  {:>6}  {:>5.1}\n",
                a.id,
                a.kind.tag(),
                a.jobs,
                a.exec_cycles,
                a.reconfig_bits,
                a.reconfig_events,
                a.utilization_pct
            ));
        }
        s.push_str(&format!("outcome digest     : {:#018x}\n", self.digest()));
        s
    }

    /// Machine-readable JSON summary (the `BENCH_runtime.json` payload).
    pub fn to_json(&self, experiment: &str) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"experiment\": \"{experiment}\",\n"));
        s.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        s.push_str(&format!("  \"dct_jobs\": {},\n", self.dct_jobs));
        s.push_str(&format!("  \"me_jobs\": {},\n", self.me_jobs));
        s.push_str(&format!("  \"encode_jobs\": {},\n", self.encode_jobs));
        s.push_str(&format!(
            "  \"makespan_cycles\": {},\n",
            self.makespan_cycles
        ));
        s.push_str(&format!(
            "  \"jobs_per_megacycle\": {:.4},\n",
            self.jobs_per_megacycle
        ));
        s.push_str(&format!(
            "  \"cache\": {{\"lookups\": {}, \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.6}}},\n",
            self.cache.lookups(),
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate()
        ));
        s.push_str(&format!(
            "  \"total_reconfig_bits\": {},\n",
            self.total_reconfig_bits
        ));
        s.push_str(&format!(
            "  \"reconfig_events\": {},\n",
            self.reconfig_events
        ));
        s.push_str(&format!(
            "  \"outcome_digest\": \"{:#018x}\",\n",
            self.digest()
        ));
        s.push_str("  \"arrays\": [\n");
        for (i, a) in self.arrays.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": {}, \"kind\": \"{}\", \"jobs\": {}, \"exec_cycles\": {}, \
                 \"reconfig_bits\": {}, \"reconfig_events\": {}, \"utilization_pct\": {:.2}}}{}\n",
                a.id,
                a.kind.tag(),
                a.jobs,
                a.exec_cycles,
                a.reconfig_bits,
                a.reconfig_events,
                a.utilization_pct,
                if i + 1 == self.arrays.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}
