//! Per-array job execution: what each worker thread runs.
//!
//! A worker owns one simulated array: a `ReconfigManager` holding the
//! kernels its plan needs, lazily built cycle-accurate engines, and the
//! assignment list the scheduler produced. Execution is deterministic —
//! every payload is a pure function of the job spec — so running arrays on
//! parallel threads cannot change any result, only the wall-clock time to
//! compute it.

use std::collections::HashMap;

use dsra_core::error::{CoreError, Result};
use dsra_core::netlist::Fingerprint;
use dsra_core::rng::SplitMix64;
use dsra_dct::{DaParams, DctImpl};
use dsra_me::{MeEngine, SearchParams, Systolic2d};
use dsra_platform::{ReconfigManager, ReconfigReport, SocConfig};
use dsra_video::{
    encode_frame, me_search_planes, EncodeConfig, JobPayload, SequenceConfig, SyntheticSequence,
};

use crate::kernel::DctMapping;
use crate::Assignment;

/// What one executed job reports back.
#[derive(Debug, Clone)]
pub(crate) struct JobExec {
    /// Job id (merge key).
    pub job_id: u32,
    /// Measured reconfiguration cost (bits actually written on this array).
    pub reconfig: ReconfigReport,
    /// Sim-cycles the payload occupied the array.
    pub exec_cycles: u64,
    /// Deterministic digest of the payload's outputs.
    pub checksum: u64,
}

use dsra_core::rng::fnv1a_fold as mix;

/// One array's execution engines, owned by the runtime and **reused across
/// serve calls**: cycle-accurate DCT implementations keyed by mapping name
/// and systolic ME engines keyed by block edge. Before this cache each
/// serve rebuilt every engine — a netlist construction plus an execution-
/// plan compile per kernel per chunk, which E12's chunked discharge loop
/// paid hundreds of times over.
#[derive(Default)]
pub(crate) struct WorkerEngines {
    dct_impls: HashMap<&'static str, Box<dyn DctImpl>>,
    me_engines: HashMap<u8, Systolic2d>,
}

/// Executes one array's plan in order. `assignments` must all target the
/// same array.
pub(crate) fn run_worker(
    soc: SocConfig,
    params: DaParams,
    assignments: &[Assignment],
    engines: &mut WorkerEngines,
) -> Result<Vec<JobExec>> {
    let mut mgr = ReconfigManager::new(soc);
    // Register each distinct kernel once (the plan references the same Arc
    // many times); the hex string — built once per kernel — doubles as the
    // registry key.
    let mut registered: HashMap<Fingerprint, String> = HashMap::new();
    for a in assignments {
        if let std::collections::hash_map::Entry::Vacant(e) = registered.entry(a.kernel.fingerprint)
        {
            let hex = a.kernel.fingerprint.to_hex();
            mgr.register(hex.clone(), a.kernel.artifact.bitstream.clone());
            e.insert(hex);
        }
    }
    let mut out = Vec::with_capacity(assignments.len());
    for a in assignments {
        let reconfig = mgr.switch_to(&registered[&a.kernel.fingerprint])?;
        debug_assert_eq!(
            reconfig.bits_written, a.slot.reconfig_bits,
            "executed switch cost must match the scheduler's plan"
        );
        let (exec_cycles, checksum) = execute_payload(params, &a.job, &a.kernel.name, engines)?;
        out.push(JobExec {
            job_id: a.job.id,
            reconfig,
            exec_cycles,
            checksum,
        });
    }
    Ok(out)
}

/// Executes one job's payload cycle-accurately on an array's engines and
/// returns `(exec_cycles, checksum)`. Shared by the batch worker loop
/// above and the incremental streaming path (`SocRuntime::stream_serve_job`),
/// so both serve modes compute byte-identical outcomes from one
/// definition.
pub(crate) fn execute_payload(
    params: DaParams,
    job: &dsra_video::JobSpec,
    kernel_name: &str,
    engines: &mut WorkerEngines,
) -> Result<(u64, u64)> {
    let WorkerEngines {
        dct_impls,
        me_engines,
    } = engines;
    fn dct_impl<'a>(
        dct_impls: &'a mut HashMap<&'static str, Box<dyn DctImpl>>,
        params: DaParams,
        name: &str,
    ) -> Result<&'a mut Box<dyn DctImpl>> {
        let mapping = DctMapping::from_name(name)
            .ok_or_else(|| CoreError::Mismatch(format!("unknown DCT kernel `{name}`")))?;
        Ok(match dct_impls.entry(mapping.name()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => e.insert(mapping.build(params)?),
        })
    }
    Ok(match job.payload {
        JobPayload::DctBlocks { blocks, amplitude } => {
            let imp = dct_impl(dct_impls, params, kernel_name)?;
            let mut rng = SplitMix64::new(job.seed);
            let mut cycles = 0u64;
            let mut sum = 0xA5A5_A5A5u64;
            for _ in 0..blocks {
                let x: [i64; 8] = std::array::from_fn(|_| {
                    rng.next_below(2 * amplitude as u64 + 1) as i64 - amplitude
                });
                let y = imp.transform(&x)?;
                cycles += imp.cycles_per_block();
                for v in y {
                    // Quantise to kill any last-bit noise before digesting.
                    sum = mix(sum, (v * 256.0).round() as i64 as u64);
                }
            }
            (cycles, sum)
        }
        JobPayload::MeSearch {
            size,
            shift,
            block,
            range,
        } => {
            let eng = match me_engines.entry(block) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(Systolic2d::new(usize::from(block))?)
                }
            };
            let (w, h) = (usize::from(size.0), usize::from(size.1));
            let (b, rg) = (usize::from(block), usize::from(range));
            // Search a centred block; the full window (block ± range)
            // must fit inside the plane or the systolic feed would read
            // out of bounds.
            let (bx, by) = (w.saturating_sub(b) / 2, h.saturating_sub(b) / 2);
            if bx < rg || by < rg || bx + b + rg > w || by + b + rg > h {
                return Err(CoreError::Mismatch(format!(
                    "job {}: {w}x{h} plane too small for block {b} ± {rg} search",
                    job.id
                )));
            }
            let (cur, refp) = me_search_planes(size, shift, job.seed);
            let sp = SearchParams {
                block: b,
                range: i32::from(range),
            };
            let r = eng.search(&cur, &refp, bx, by, &sp)?;
            let mut sum = 0x5A5A_5A5Au64;
            sum = mix(sum, r.best.mv.0 as u64);
            sum = mix(sum, r.best.mv.1 as u64);
            sum = mix(sum, r.best.sad);
            sum = mix(sum, r.best.candidates);
            (r.cycles, sum)
        }
        JobPayload::EncodeGop {
            size,
            frames,
            noise,
        } => {
            let imp = dct_impl(dct_impls, params, kernel_name)?;
            let seq = SyntheticSequence::generate(SequenceConfig {
                width: usize::from(size.0),
                height: usize::from(size.1),
                frames: usize::from(frames),
                noise,
                objects: 1,
                seed: job.seed,
                ..Default::default()
            });
            let cfg = EncodeConfig {
                search: SearchParams {
                    block: 16,
                    range: 2,
                },
                ..Default::default()
            };
            let mut cycles = 0u64;
            let mut sum = 0xC0DEu64;
            for f in 1..seq.frames().len() {
                let (_, stats) = encode_frame(seq.frame(f), seq.frame(f - 1), imp.as_ref(), &cfg)?;
                cycles += stats.dct_cycles;
                sum = mix(sum, stats.total_sad);
                sum = mix(sum, stats.estimated_bits);
                sum = mix(sum, stats.nonzero_levels as u64);
                sum = mix(sum, (stats.psnr_db * 1000.0).round() as i64 as u64);
            }
            (cycles, sum)
        }
    })
}
