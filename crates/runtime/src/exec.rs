//! Per-array job execution: what each worker thread runs.
//!
//! A worker owns one simulated array: a `ReconfigManager` holding the
//! kernels its plan needs, an execution [`Backend`] (the cycle-level array
//! simulator by default, the golden software reference or the differential
//! check mode when configured), and the assignment list the scheduler
//! produced. Execution is deterministic — every payload is a pure function
//! of the job spec — so running arrays on parallel threads cannot change
//! any result, only the wall-clock time to compute it.

use std::collections::HashMap;

use dsra_backend::Backend;
use dsra_core::error::Result;
use dsra_core::netlist::Fingerprint;
use dsra_dct::DaParams;
use dsra_platform::{ReconfigManager, ReconfigReport, SocConfig};

use crate::Assignment;

/// What one executed job reports back.
#[derive(Debug, Clone)]
pub(crate) struct JobExec {
    /// Job id (merge key).
    pub job_id: u32,
    /// Measured reconfiguration cost (bits actually written on this array).
    pub reconfig: ReconfigReport,
    /// Sim-cycles the payload occupied the array.
    pub exec_cycles: u64,
    /// Deterministic digest of the payload's outputs.
    pub checksum: u64,
}

/// Executes one array's plan in order. `assignments` must all target the
/// same array; `backend` is that array's runtime-owned execution engine,
/// reused across serve calls.
pub(crate) fn run_worker(
    soc: SocConfig,
    params: DaParams,
    assignments: &[Assignment],
    backend: &mut dyn Backend,
) -> Result<Vec<JobExec>> {
    let mut mgr = ReconfigManager::new(soc);
    // Register each distinct kernel once (the plan references the same Arc
    // many times); the hex string — built once per kernel — doubles as the
    // registry key.
    let mut registered: HashMap<Fingerprint, String> = HashMap::new();
    for a in assignments {
        if let std::collections::hash_map::Entry::Vacant(e) = registered.entry(a.kernel.fingerprint)
        {
            let hex = a.kernel.fingerprint.to_hex();
            mgr.register(hex.clone(), a.kernel.artifact.bitstream.clone());
            e.insert(hex);
        }
    }
    let mut out = Vec::with_capacity(assignments.len());
    for a in assignments {
        let reconfig = mgr.switch_to(&registered[&a.kernel.fingerprint])?;
        debug_assert_eq!(
            reconfig.bits_written, a.slot.reconfig_bits,
            "executed switch cost must match the scheduler's plan"
        );
        let outcome = backend.execute(params, &a.job, &a.kernel.name)?;
        out.push(JobExec {
            job_id: a.job.id,
            reconfig,
            exec_cycles: outcome.exec_cycles,
            checksum: outcome.checksum,
        });
    }
    Ok(out)
}
