//! [`ProfileReport`] — the joined attribution view: per-array
//! utilization, per-kernel cycle and energy accounts, and the global
//! hot-op ranking produced by splitting each kernel's busy cycles with
//! its static [`OpMix`].
//!
//! The op rollup uses [`OpMix::attribute`], a largest-remainder split
//! whose shares sum *exactly* to the input cycles, so a report built
//! from a stream whose every busy interval carries a routable job
//! accounts for 100 % of pool busy cycles — the `profile_serve`
//! acceptance gate reads [`ProfileReport::attribution_pct`] directly.

use crate::profiler::{PhaseBreakdown, Profiler};
use dsra_sim::{OpClass, OpMix};
use dsra_trace::CounterTrack;
use std::collections::BTreeMap;

/// One array's utilization summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayUtilization {
    /// Array id.
    pub array: u32,
    /// Cycles per phase.
    pub phases: PhaseBreakdown,
    /// Covered span (largest interval end).
    pub span: u64,
    /// Exec cycles as a percentage of the covered span.
    pub utilization_pct: f64,
}

/// One kernel fingerprint's cycle and energy account, pool-wide.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Bitstream fingerprint (32 hex digits).
    pub fingerprint: String,
    /// Kernel display name.
    pub kernel: String,
    /// Execution cycles across all arrays.
    pub exec_cycles: u64,
    /// Reconfiguration cycles (diff + wake rewrites) across all arrays.
    pub reconfig_cycles: u64,
    /// Jobs completed.
    pub completions: u64,
    /// Dynamic joules.
    pub dynamic_j: f64,
    /// Static joules.
    pub static_j: f64,
    /// Reconfiguration joules.
    pub reconfig_j: f64,
}

impl KernelProfile {
    /// Total joules attributed to this fingerprint.
    pub fn energy_j(&self) -> f64 {
        self.dynamic_j + self.static_j + self.reconfig_j
    }
}

/// One operation class's share of pool busy cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotOp {
    /// Operation class.
    pub class: OpClass,
    /// Busy cycles attributed to this class.
    pub cycles: u64,
    /// Share of all attributed cycles, percent.
    pub share_pct: f64,
}

/// The joined attribution report.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Per-array utilization, array-id order.
    pub arrays: Vec<ArrayUtilization>,
    /// Per-kernel accounts, hottest (most exec cycles) first.
    pub kernels: Vec<KernelProfile>,
    /// Hot-op ranking, largest share first.
    pub hot_ops: Vec<HotOp>,
    /// Total execution cycles across the pool.
    pub busy_cycles: u64,
    /// Busy cycles attributed to an op class through a kernel's mix.
    pub attributed_cycles: u64,
    /// Busy/reconfig cycles whose interval had no routable job.
    pub unrouted_cycles: u64,
    /// Total joules across all kernel accounts.
    pub total_energy_j: f64,
    /// Largest virtual cycle observed.
    pub end_cycle: u64,
}

impl ProfileReport {
    /// Joins the profiler's accounts with the kernel cache's op mixes
    /// (`SocRuntime::kernel_op_mixes()` tuples: name, fingerprint hex,
    /// mix). Kernels whose fingerprint has no mix keep their cycle and
    /// energy accounts but contribute nothing to the op rollup, which
    /// shows up as `attribution_pct < 100`.
    pub fn build(prof: &Profiler, op_mixes: &[(String, String, OpMix)]) -> Self {
        let mix_of: BTreeMap<&str, &OpMix> = op_mixes
            .iter()
            .map(|(_, fp, mix)| (fp.as_str(), mix))
            .collect();

        let arrays: Vec<ArrayUtilization> = prof
            .arrays()
            .iter()
            .map(|(&array, acct)| ArrayUtilization {
                array,
                phases: acct.phases,
                span: acct.span_end,
                utilization_pct: acct.phases.exec as f64 * 100.0 / acct.span_end.max(1) as f64,
            })
            .collect();

        // Pool-wide per-fingerprint cycles, then join the energy account.
        let mut cycles: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for acct in prof.arrays().values() {
            for (fp, k) in &acct.kernels {
                let c = cycles.entry(fp.as_str()).or_default();
                c.0 += k.exec;
                c.1 += k.reconfig;
            }
        }
        let mut kernels: Vec<KernelProfile> = cycles
            .iter()
            .map(|(&fp, &(exec, reconfig))| {
                let e = prof.energy().get(fp);
                KernelProfile {
                    fingerprint: fp.to_owned(),
                    kernel: e.map(|e| e.kernel.clone()).unwrap_or_else(|| "?".into()),
                    exec_cycles: exec,
                    reconfig_cycles: reconfig,
                    completions: e.map_or(0, |e| e.completions),
                    dynamic_j: e.map_or(0.0, |e| e.dynamic_j),
                    static_j: e.map_or(0.0, |e| e.static_j),
                    reconfig_j: e.map_or(0.0, |e| e.reconfig_j),
                }
            })
            .collect();
        kernels.sort_by(|a, b| {
            b.exec_cycles
                .cmp(&a.exec_cycles)
                .then_with(|| a.fingerprint.cmp(&b.fingerprint))
        });

        // Op rollup: split each kernel's exec cycles with its mix.
        let mut per_class = [0u64; OpClass::COUNT];
        let mut attributed = 0u64;
        for k in &kernels {
            if let Some(mix) = mix_of.get(k.fingerprint.as_str()) {
                for (class, share) in mix.attribute(k.exec_cycles) {
                    per_class[class.index()] += share;
                    attributed += share;
                }
            }
        }
        let mut hot_ops: Vec<HotOp> = OpClass::ALL
            .iter()
            .filter(|c| per_class[c.index()] > 0)
            .map(|&class| HotOp {
                class,
                cycles: per_class[class.index()],
                share_pct: per_class[class.index()] as f64 * 100.0 / attributed.max(1) as f64,
            })
            .collect();
        hot_ops.sort_by(|a, b| {
            b.cycles
                .cmp(&a.cycles)
                .then_with(|| a.class.index().cmp(&b.class.index()))
        });

        ProfileReport {
            arrays,
            kernels,
            hot_ops,
            busy_cycles: prof.busy_cycles(),
            attributed_cycles: attributed,
            unrouted_cycles: prof.unrouted_cycles(),
            total_energy_j: prof.total_energy_j(),
            end_cycle: prof.end_cycle(),
        }
    }

    /// Busy cycles attributed to an op class, as a percentage of all
    /// busy cycles (100 when the pool never executed).
    pub fn attribution_pct(&self) -> f64 {
        if self.busy_cycles == 0 {
            return 100.0;
        }
        self.attributed_cycles as f64 * 100.0 / self.busy_cycles as f64
    }

    /// Mean utilization across arrays, percent (0 with no arrays).
    pub fn mean_utilization_pct(&self) -> f64 {
        if self.arrays.is_empty() {
            return 0.0;
        }
        self.arrays.iter().map(|a| a.utilization_pct).sum::<f64>() / self.arrays.len() as f64
    }

    /// The human-readable attribution table: per-array utilization,
    /// per-kernel cycles and joules, top-`k` hot ops. Deterministic.
    pub fn render(&self, top_k: usize) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "attribution        : {}/{} busy cycles ({:.2}%), {} unrouted, {:.6} J total\n",
            self.attributed_cycles,
            self.busy_cycles,
            self.attribution_pct(),
            self.unrouted_cycles,
            self.total_energy_j
        ));
        s.push_str("array  util%       idle      gated   reconfig     waking       exec\n");
        for a in &self.arrays {
            s.push_str(&format!(
                "{:>5}  {:>5.1} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                a.array,
                a.utilization_pct,
                a.phases.idle,
                a.phases.gated,
                a.phases.reconfig,
                a.phases.waking,
                a.phases.exec
            ));
        }
        s.push_str("kernel accounts (hottest first):\n");
        for k in &self.kernels {
            s.push_str(&format!(
                "  {}  {:<24} {:>10} exec {:>8} reconfig {:>5} jobs  {:>12.6} J\n",
                k.fingerprint,
                k.kernel,
                k.exec_cycles,
                k.reconfig_cycles,
                k.completions,
                k.energy_j()
            ));
        }
        s.push_str(&format!("top-{top_k} hot ops:\n"));
        for op in self.hot_ops.iter().take(top_k) {
            s.push_str(&format!(
                "  op:{:<14} {:>12} cycles  {:>5.1}%\n",
                op.class.tag(),
                op.cycles,
                op.share_pct
            ));
        }
        s
    }

    /// FNV-1a digest of the rendered report (all rows) — a stable
    /// fingerprint for determinism checks across runs of the same seed.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.render(usize::MAX).bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Per-array occupancy timelines as Chrome counter tracks: one track per
/// array, one sample per `window` cycles, each sample carrying the
/// cycles that window spent in `exec` / `reconfig` (incl. waking) /
/// `gated` / `idle`. Stacked in the viewer they tile the window, so the
/// exec series *is* the utilization timeline.
pub fn utilization_tracks(prof: &Profiler, window: u64) -> Vec<CounterTrack> {
    let window = window.max(1);
    let mut tracks = Vec::new();
    for (&array, acct) in prof.arrays() {
        let span = acct.span_end;
        let windows = span.div_ceil(window).max(1) as usize;
        // [exec, reconfig, gated, idle] cycles per window.
        let mut buckets = vec![[0u64; 4]; windows];
        for &(start, end, phase) in &acct.intervals {
            let slot = match phase {
                dsra_trace::ArrayPhase::Exec => 0,
                dsra_trace::ArrayPhase::Reconfig | dsra_trace::ArrayPhase::Waking => 1,
                dsra_trace::ArrayPhase::Gated => 2,
                dsra_trace::ArrayPhase::Idle => 3,
            };
            // Split the interval across the windows it overlaps.
            let mut t = start;
            while t < end {
                let w = (t / window) as usize;
                let w_end = ((t / window) + 1) * window;
                let upto = end.min(w_end);
                if let Some(b) = buckets.get_mut(w) {
                    b[slot] += upto - t;
                }
                t = upto;
            }
        }
        let samples = buckets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                (
                    i as u64 * window,
                    vec![
                        ("exec".to_owned(), b[0] as f64),
                        ("reconfig".to_owned(), b[1] as f64),
                        ("gated".to_owned(), b[2] as f64),
                        ("idle".to_owned(), b[3] as f64),
                    ],
                )
            })
            .collect();
        tracks.push(CounterTrack {
            name: format!("array{array}_occupancy"),
            tid: array,
            samples,
        });
    }
    tracks
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsra_trace::{ArrayPhase, EnergyBreakdown, TraceEvent};

    fn profiler_with_two_kernels() -> Profiler {
        let mut p = Profiler::new();
        for (job, array, kernel, fp, start) in [
            (1u32, 0u32, "dct8", "aa", 0u64),
            (2, 1, "me_full", "bb", 100),
        ] {
            let fp: String = fp.repeat(16);
            p.observe(&TraceEvent::JobSchedule {
                t: start,
                job,
                array,
                kernel: kernel.into(),
                fingerprint: fp.clone(),
            });
            p.observe(&TraceEvent::ArrayInterval {
                array,
                phase: ArrayPhase::Reconfig,
                start,
                end: start + 100,
                job: Some(job),
                kernel: Some(kernel.into()),
            });
            p.observe(&TraceEvent::ArrayInterval {
                array,
                phase: ArrayPhase::Exec,
                start: start + 100,
                end: start + 100 + 600,
                job: Some(job),
                kernel: Some(kernel.into()),
            });
            p.observe(&TraceEvent::JobComplete {
                t: start + 700,
                job,
                checksum: 1,
                energy: EnergyBreakdown {
                    dynamic_j: 2.0,
                    static_j: 1.0,
                    reconfig_j: 0.5,
                },
            });
        }
        p
    }

    fn mixes() -> Vec<(String, String, OpMix)> {
        let mut dct = OpMix::new();
        dct.add(OpClass::AddSub, 3);
        dct.add(OpClass::Reg, 1);
        let mut me = OpMix::new();
        me.add(OpClass::AbsDiff, 2);
        vec![
            ("dct8".into(), "aa".repeat(16), dct),
            ("me_full".into(), "bb".repeat(16), me),
        ]
    }

    #[test]
    fn report_attributes_every_busy_cycle_exactly() {
        let p = profiler_with_two_kernels();
        let r = ProfileReport::build(&p, &mixes());
        assert_eq!(r.busy_cycles, 1_200);
        assert_eq!(r.attributed_cycles, 1_200, "exact largest-remainder split");
        assert!((r.attribution_pct() - 100.0).abs() < 1e-12);
        assert_eq!(r.unrouted_cycles, 0);
        assert!((r.total_energy_j - 7.0).abs() < 1e-12);
        // dct8: 600 × {AddSub 3/4, Reg 1/4}; me_full: 600 × AbsDiff.
        let by_class: BTreeMap<_, _> = r.hot_ops.iter().map(|o| (o.class, o.cycles)).collect();
        assert_eq!(by_class[&OpClass::AbsDiff], 600);
        assert_eq!(by_class[&OpClass::AddSub], 450);
        assert_eq!(by_class[&OpClass::Reg], 150);
        assert_eq!(r.hot_ops[0].class, OpClass::AbsDiff, "largest first");
        assert_eq!(r.kernels.len(), 2);
        assert_eq!(r.kernels[0].completions, 1);
        assert!((r.kernels[0].energy_j() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn missing_mix_lowers_attribution_but_keeps_the_account() {
        let p = profiler_with_two_kernels();
        let only_dct: Vec<_> = mixes().into_iter().take(1).collect();
        let r = ProfileReport::build(&p, &only_dct);
        assert_eq!(r.attributed_cycles, 600);
        assert!((r.attribution_pct() - 50.0).abs() < 1e-12);
        assert_eq!(r.kernels.len(), 2, "energy/cycle accounts survive");
    }

    #[test]
    fn render_and_digest_are_deterministic() {
        let p = profiler_with_two_kernels();
        let r = ProfileReport::build(&p, &mixes());
        assert_eq!(r.render(5), r.render(5));
        assert_eq!(r.digest(), r.digest());
        let fewer = ProfileReport::build(&p, &mixes()[..1]);
        assert_ne!(r.digest(), fewer.digest());
        let table = r.render(5);
        assert!(table.contains("op:abs_diff"));
        assert!(table.contains("dct8"));
        assert!(table.contains("100.00%"));
    }

    #[test]
    fn utilization_tracks_tile_each_window() {
        let p = profiler_with_two_kernels();
        let tracks = utilization_tracks(&p, 200);
        assert_eq!(tracks.len(), 2);
        let t0 = &tracks[0];
        assert_eq!(t0.name, "array0_occupancy");
        // Array 0 spans [0, 700): windows of 200 → 4 samples.
        assert_eq!(t0.samples.len(), 4);
        // First window: 100 reconfig + 100 exec.
        let first: BTreeMap<_, _> = t0.samples[0].1.iter().cloned().collect();
        assert_eq!(first["reconfig"], 100.0);
        assert_eq!(first["exec"], 100.0);
        // Full windows tile to the window size; the tail is partial.
        for (start, series) in &t0.samples[..3] {
            let total: f64 = series.iter().map(|(_, v)| v).sum();
            assert_eq!(total, 200.0, "window at {start} tiles");
        }
    }
}
