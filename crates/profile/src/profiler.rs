//! The online [`Profiler`] — a fold over the [`TraceEvent`] stream that
//! charges every array cycle and every joule to a (kernel, phase) pair —
//! plus [`ProfilerHandle`] (shared ownership) and [`ProfileSink`], the
//! [`TraceSink`] tee that feeds it during a serve.
//!
//! The profiler is a pure observer: it reads the same virtual-time event
//! stream the Chrome exporter consumes and mutates nothing, so enabling
//! it cannot perturb schedules, checksums, or report digests. Attribution
//! works by joining three event kinds:
//!
//! * `JobSchedule` routes a job id to its `(array, kernel, fingerprint)`;
//! * `ArrayInterval` charges the interval's cycles to the array's phase
//!   account and — for `Reconfig`/`Waking`/`Exec` intervals carrying a
//!   job — to the routed kernel fingerprint;
//! * `JobComplete` adds the job's [`dsra_trace::EnergyBreakdown`] to the same
//!   fingerprint, so every joule and every busy cycle land on one key.

use dsra_trace::{ArrayPhase, EventLog, HealthSnapshot, TraceEvent, TraceSink};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Where one scheduled job ran: its array and kernel identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRoute {
    /// Array the job was scheduled on.
    pub array: u32,
    /// Kernel display name.
    pub kernel: String,
    /// Bitstream fingerprint (32 hex digits) — the attribution key.
    pub fingerprint: String,
}

/// Virtual cycles one array spent in each [`ArrayPhase`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Powered but idle.
    pub idle: u64,
    /// Power-gated.
    pub gated: u64,
    /// Partial (diff) reconfiguration.
    pub reconfig: u64,
    /// Full rewrite after a forced wake.
    pub waking: u64,
    /// Executing a job (the "busy" cycles attribution must cover).
    pub exec: u64,
}

impl PhaseBreakdown {
    /// Total cycles across all phases.
    pub fn total(&self) -> u64 {
        self.idle + self.gated + self.reconfig + self.waking + self.exec
    }

    /// Adds `cycles` to the account for `phase`.
    pub fn charge(&mut self, phase: ArrayPhase, cycles: u64) {
        match phase {
            ArrayPhase::Idle => self.idle += cycles,
            ArrayPhase::Gated => self.gated += cycles,
            ArrayPhase::Reconfig => self.reconfig += cycles,
            ArrayPhase::Waking => self.waking += cycles,
            ArrayPhase::Exec => self.exec += cycles,
        }
    }
}

/// Cycles one kernel fingerprint consumed on one array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCycles {
    /// Execution cycles.
    pub exec: u64,
    /// Reconfiguration cycles (diff reconfig + wake rewrites).
    pub reconfig: u64,
}

/// One array's profile: phase totals, per-kernel cycle accounts, and the
/// raw interval list (for windowed utilization timelines).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArrayAccount {
    /// Cycles per phase.
    pub phases: PhaseBreakdown,
    /// Largest interval end observed (the array's covered span).
    pub span_end: u64,
    /// Per-fingerprint cycle accounts, sorted by fingerprint.
    pub kernels: BTreeMap<String, KernelCycles>,
    /// Every interval in emission order (`start`, `end`, phase).
    pub intervals: Vec<(u64, u64, ArrayPhase)>,
}

/// One kernel fingerprint's energy account, joined from `JobComplete`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelEnergy {
    /// Kernel display name.
    pub kernel: String,
    /// Jobs completed under this fingerprint.
    pub completions: u64,
    /// Dynamic (switching) joules.
    pub dynamic_j: f64,
    /// Static (leakage) joules.
    pub static_j: f64,
    /// Reconfiguration joules.
    pub reconfig_j: f64,
}

impl KernelEnergy {
    /// Total joules attributed to this fingerprint.
    pub fn total_j(&self) -> f64 {
        self.dynamic_j + self.static_j + self.reconfig_j
    }
}

/// Folds the trace-event stream into per-array, per-kernel, and
/// per-phase accounts. Deterministic: same event stream, same state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profiler {
    routes: BTreeMap<u32, JobRoute>,
    arrays: BTreeMap<u32, ArrayAccount>,
    energy: BTreeMap<String, KernelEnergy>,
    end_cycle: u64,
    unrouted_cycles: u64,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Feeds one event.
    pub fn observe(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::JobSchedule {
                t,
                job,
                array,
                kernel,
                fingerprint,
            } => {
                self.end_cycle = self.end_cycle.max(*t);
                self.routes.insert(
                    *job,
                    JobRoute {
                        array: *array,
                        kernel: kernel.clone(),
                        fingerprint: fingerprint.clone(),
                    },
                );
            }
            TraceEvent::ArrayInterval {
                array,
                phase,
                start,
                end,
                job,
                ..
            } => {
                let cycles = end.saturating_sub(*start);
                self.end_cycle = self.end_cycle.max(*end);
                let acct = self.arrays.entry(*array).or_default();
                acct.phases.charge(*phase, cycles);
                acct.span_end = acct.span_end.max(*end);
                acct.intervals.push((*start, *end, *phase));
                if matches!(
                    phase,
                    ArrayPhase::Exec | ArrayPhase::Reconfig | ArrayPhase::Waking
                ) {
                    match job.and_then(|j| self.routes.get(&j)) {
                        Some(route) => {
                            let k = acct.kernels.entry(route.fingerprint.clone()).or_default();
                            match phase {
                                ArrayPhase::Exec => k.exec += cycles,
                                _ => k.reconfig += cycles,
                            }
                            self.energy
                                .entry(route.fingerprint.clone())
                                .or_default()
                                .kernel
                                .clone_from(&route.kernel);
                        }
                        None => self.unrouted_cycles += cycles,
                    }
                }
            }
            TraceEvent::JobComplete { t, job, energy, .. } => {
                self.end_cycle = self.end_cycle.max(*t);
                if let Some(route) = self.routes.get(job) {
                    let e = self.energy.entry(route.fingerprint.clone()).or_default();
                    e.kernel.clone_from(&route.kernel);
                    e.completions += 1;
                    e.dynamic_j += energy.dynamic_j;
                    e.static_j += energy.static_j;
                    e.reconfig_j += energy.reconfig_j;
                }
            }
            TraceEvent::JobEnqueue { t, .. }
            | TraceEvent::JobAdmit { t, .. }
            | TraceEvent::JobShed { t, .. }
            | TraceEvent::BatteryLevel { t, .. }
            | TraceEvent::Counter { t, .. }
            | TraceEvent::FaultInjected { t, .. }
            | TraceEvent::DivergenceDetected { t, .. }
            | TraceEvent::JobRetry { t, .. }
            | TraceEvent::ArrayQuarantine { t, .. }
            | TraceEvent::ArrayRestore { t, .. } => {
                self.end_cycle = self.end_cycle.max(*t);
            }
            TraceEvent::Meta { .. } => {}
        }
    }

    /// Per-array accounts, array-id order.
    pub fn arrays(&self) -> &BTreeMap<u32, ArrayAccount> {
        &self.arrays
    }

    /// Per-fingerprint energy accounts, fingerprint order.
    pub fn energy(&self) -> &BTreeMap<String, KernelEnergy> {
        &self.energy
    }

    /// Job routing table (most recent schedule per job id).
    pub fn routes(&self) -> &BTreeMap<u32, JobRoute> {
        &self.routes
    }

    /// Largest virtual cycle observed.
    pub fn end_cycle(&self) -> u64 {
        self.end_cycle
    }

    /// Busy/reconfig cycles whose interval carried no routable job —
    /// attribution leakage (0 on a healthy runtime stream).
    pub fn unrouted_cycles(&self) -> u64 {
        self.unrouted_cycles
    }

    /// Total execution cycles across the pool.
    pub fn busy_cycles(&self) -> u64 {
        self.arrays.values().map(|a| a.phases.exec).sum()
    }

    /// Total joules attributed across all fingerprints.
    pub fn total_energy_j(&self) -> f64 {
        self.energy.values().map(KernelEnergy::total_j).sum()
    }
}

/// Cloneable shared handle to a [`Profiler`].
#[derive(Debug, Clone)]
pub struct ProfilerHandle(Arc<Mutex<Profiler>>);

impl PartialEq for ProfilerHandle {
    /// Handles compare by identity: two handles are equal when they
    /// share the same profiler.
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for ProfilerHandle {}

impl Default for ProfilerHandle {
    fn default() -> Self {
        ProfilerHandle::new(Profiler::new())
    }
}

impl ProfilerHandle {
    /// Wraps a profiler for sharing.
    pub fn new(profiler: Profiler) -> Self {
        ProfilerHandle(Arc::new(Mutex::new(profiler)))
    }

    fn lock(&self) -> MutexGuard<'_, Profiler> {
        self.0.lock().expect("profiler lock poisoned")
    }

    /// Runs a closure against the profiler.
    pub fn with<R>(&self, f: impl FnOnce(&mut Profiler) -> R) -> R {
        f(&mut self.lock())
    }

    /// Feeds one event.
    pub fn observe(&self, ev: &TraceEvent) {
        self.lock().observe(ev);
    }

    /// A clone of the profiler's current state.
    pub fn snapshot(&self) -> Profiler {
        self.lock().clone()
    }
}

/// A [`TraceSink`] that tees every event into the shared profiler and
/// forwards it to the wrapped inner sink, so `--profile-out` composes
/// with `--trace` (inner [`EventLog`]) and `--monitor` (inner
/// `MonitorSink`): health queries and log recovery delegate inward.
pub struct ProfileSink {
    handle: ProfilerHandle,
    inner: Box<dyn TraceSink>,
}

impl std::fmt::Debug for ProfileSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfileSink")
            .field("handle", &self.handle)
            .finish_non_exhaustive()
    }
}

impl ProfileSink {
    /// Tees into `handle`, forwarding to `inner`.
    pub fn new(handle: ProfilerHandle, inner: Box<dyn TraceSink>) -> Self {
        ProfileSink { handle, inner }
    }

    /// The shared handle (clone to keep after installing the sink).
    pub fn handle(&self) -> ProfilerHandle {
        self.handle.clone()
    }
}

impl TraceSink for ProfileSink {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&mut self, event: TraceEvent) {
        self.handle.observe(&event);
        if self.inner.enabled() {
            self.inner.emit(event);
        }
    }

    fn into_log(self: Box<Self>) -> Option<EventLog> {
        self.inner.into_log()
    }

    fn health_snapshot(&mut self, now_cycle: u64) -> Option<HealthSnapshot> {
        self.inner.health_snapshot(now_cycle)
    }

    fn active_alerts(&mut self, now_cycle: u64) -> u32 {
        self.inner.active_alerts(now_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsra_trace::{EnergyBreakdown, NoopSink};

    fn feed(p: &mut Profiler) {
        p.observe(&TraceEvent::JobSchedule {
            t: 100,
            job: 1,
            array: 0,
            kernel: "dct8".into(),
            fingerprint: "aa".repeat(16),
        });
        p.observe(&TraceEvent::ArrayInterval {
            array: 0,
            phase: ArrayPhase::Idle,
            start: 0,
            end: 100,
            job: None,
            kernel: None,
        });
        p.observe(&TraceEvent::ArrayInterval {
            array: 0,
            phase: ArrayPhase::Reconfig,
            start: 100,
            end: 400,
            job: Some(1),
            kernel: Some("dct8".into()),
        });
        p.observe(&TraceEvent::ArrayInterval {
            array: 0,
            phase: ArrayPhase::Exec,
            start: 400,
            end: 1_000,
            job: Some(1),
            kernel: Some("dct8".into()),
        });
        p.observe(&TraceEvent::JobComplete {
            t: 1_000,
            job: 1,
            checksum: 7,
            energy: EnergyBreakdown {
                dynamic_j: 1.0,
                static_j: 0.5,
                reconfig_j: 0.25,
            },
        });
    }

    #[test]
    fn intervals_and_energy_join_on_the_fingerprint() {
        let mut p = Profiler::new();
        feed(&mut p);
        let fp = "aa".repeat(16);
        let a = &p.arrays()[&0];
        assert_eq!(a.phases.idle, 100);
        assert_eq!(a.phases.reconfig, 300);
        assert_eq!(a.phases.exec, 600);
        assert_eq!(a.span_end, 1_000);
        assert_eq!(
            a.kernels[&fp],
            KernelCycles {
                exec: 600,
                reconfig: 300
            }
        );
        let e = &p.energy()[&fp];
        assert_eq!(e.kernel, "dct8");
        assert_eq!(e.completions, 1);
        assert!((e.total_j() - 1.75).abs() < 1e-12);
        assert_eq!(p.busy_cycles(), 600);
        assert_eq!(p.unrouted_cycles(), 0);
        assert_eq!(p.end_cycle(), 1_000);
    }

    #[test]
    fn busy_intervals_without_a_route_count_as_leakage() {
        let mut p = Profiler::new();
        p.observe(&TraceEvent::ArrayInterval {
            array: 2,
            phase: ArrayPhase::Exec,
            start: 0,
            end: 50,
            job: Some(99),
            kernel: None,
        });
        assert_eq!(p.unrouted_cycles(), 50);
        assert_eq!(p.busy_cycles(), 50);
        assert!(p.energy().is_empty());
    }

    #[test]
    fn sink_tees_into_the_profiler_and_delegates_inward() {
        let handle = ProfilerHandle::default();
        let mut sink = ProfileSink::new(handle.clone(), Box::new(EventLog::new()));
        assert!(sink.enabled());
        sink.emit(TraceEvent::JobSchedule {
            t: 10,
            job: 3,
            array: 1,
            kernel: "me_full".into(),
            fingerprint: "bb".repeat(16),
        });
        assert_eq!(sink.health_snapshot(10), None, "plain inner: no health");
        assert_eq!(sink.active_alerts(10), 0);
        let log = Box::new(sink).into_log().expect("inner event log");
        assert_eq!(log.len(), 1, "event forwarded to the inner recorder");
        assert_eq!(handle.with(|p| p.routes().len()), 1);
    }

    #[test]
    fn noop_inner_keeps_profiling_but_records_nothing() {
        let handle = ProfilerHandle::default();
        let mut sink = ProfileSink::new(handle.clone(), Box::new(NoopSink));
        sink.emit(TraceEvent::JobAdmit { t: 77, job: 0 });
        assert!(Box::new(sink).into_log().is_none());
        assert_eq!(handle.with(|p| p.end_cycle()), 77);
    }

    #[test]
    fn handles_compare_by_identity() {
        let a = ProfilerHandle::default();
        let b = ProfilerHandle::default();
        assert_eq!(a, a.clone());
        assert_ne!(a, b);
    }
}
