//! Collapsed-stack flamegraph export.
//!
//! [`Flame`] accumulates `stack value` lines in the folded format that
//! `inferno-flamegraph` and speedscope consume: semicolon-separated
//! frames, one line per unique stack, sorted lexicographically so the
//! rendered text is byte-deterministic. [`flamegraph`] builds the
//! standard profile view from a [`Profiler`] and the kernel op mixes:
//!
//! ```text
//! soc;array0;kernel:dct8;op:add_sub 450
//! soc;array0;kernel:dct8;reconfig 100
//! soc;array1;idle 340
//! ```

use crate::profiler::Profiler;
use dsra_sim::OpMix;
use std::collections::BTreeMap;

/// A folded (collapsed-stack) flamegraph under construction. Repeated
/// [`Flame::add`] calls on the same stack accumulate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Flame {
    lines: BTreeMap<String, u64>,
}

impl Flame {
    /// An empty flamegraph.
    pub fn new() -> Self {
        Flame::default()
    }

    /// Adds `value` to the stack's count. Zero-valued adds are dropped
    /// so the rendered text never carries empty bars.
    pub fn add(&mut self, stack: &str, value: u64) {
        if value > 0 {
            *self.lines.entry(stack.to_owned()).or_default() += value;
        }
    }

    /// Number of distinct stacks.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// `true` when nothing was added.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The accumulated count for one stack (0 when absent).
    pub fn get(&self, stack: &str) -> u64 {
        self.lines.get(stack).copied().unwrap_or(0)
    }

    /// Sum of all stack values.
    pub fn total(&self) -> u64 {
        self.lines.values().sum()
    }

    /// The folded text: `stack value\n` per stack, sorted by stack —
    /// byte-deterministic for the CI `cmp` gate.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (stack, value) in &self.lines {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out
    }
}

/// Sanitises a display name into a frame label: the folded format splits
/// the count off the *last* space and frames on `;`, so both characters
/// become `_` (`"BASIC DA"` → `"BASIC_DA"`).
pub fn frame_label(name: &str) -> String {
    name.replace([' ', ';'], "_")
}

/// Builds the standard profile flamegraph: every array cycle becomes a
/// leaf under `soc;array<N>` — busy cycles split per op class through
/// the kernel's [`OpMix`] (`kernel:<name>;op:<tag>`), reconfiguration
/// under `kernel:<name>;reconfig`, and the remainder under `idle` /
/// `gated`. Busy cycles of a fingerprint with no mix fall back to a
/// `kernel:<name>;exec` leaf so the graph still sums to the pool total.
pub fn flamegraph(prof: &Profiler, op_mixes: &[(String, String, OpMix)]) -> Flame {
    let mix_of: BTreeMap<&str, &OpMix> = op_mixes
        .iter()
        .map(|(_, fp, mix)| (fp.as_str(), mix))
        .collect();
    let name_of: BTreeMap<&str, &str> = prof
        .energy()
        .iter()
        .map(|(fp, e)| (fp.as_str(), e.kernel.as_str()))
        .collect();
    let mut flame = Flame::new();
    for (&array, acct) in prof.arrays() {
        let base = format!("soc;array{array}");
        for (fp, k) in &acct.kernels {
            let name = frame_label(name_of.get(fp.as_str()).copied().unwrap_or("?"));
            match mix_of.get(fp.as_str()) {
                Some(mix) if !mix.is_empty() => {
                    for (class, share) in mix.attribute(k.exec) {
                        flame.add(&format!("{base};kernel:{name};op:{}", class.tag()), share);
                    }
                }
                _ => flame.add(&format!("{base};kernel:{name};exec"), k.exec),
            }
            flame.add(&format!("{base};kernel:{name};reconfig"), k.reconfig);
        }
        flame.add(&format!("{base};idle"), acct.phases.idle);
        flame.add(&format!("{base};gated"), acct.phases.gated);
    }
    flame
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsra_sim::OpClass;
    use dsra_trace::{ArrayPhase, EnergyBreakdown, TraceEvent};

    #[test]
    fn folded_lines_accumulate_sort_and_drop_zeros() {
        let mut f = Flame::new();
        f.add("soc;array0;idle", 10);
        f.add("soc;array1;idle", 5);
        f.add("soc;array0;idle", 2);
        f.add("soc;array0;never", 0);
        assert_eq!(f.len(), 2);
        assert_eq!(f.get("soc;array0;idle"), 12);
        assert_eq!(f.total(), 17);
        assert_eq!(f.render(), "soc;array0;idle 12\nsoc;array1;idle 5\n");
        assert_eq!(f.render(), f.render());
    }

    #[test]
    fn frame_labels_escape_the_format_separators() {
        assert_eq!(frame_label("BASIC DA"), "BASIC_DA");
        assert_eq!(frame_label("a;b c"), "a_b_c");
        assert_eq!(frame_label("me_full"), "me_full");
    }

    #[test]
    fn flamegraph_covers_every_cycle_of_the_pool() {
        let mut p = Profiler::new();
        p.observe(&TraceEvent::JobSchedule {
            t: 0,
            job: 1,
            array: 0,
            kernel: "dct8".into(),
            fingerprint: "aa".repeat(16),
        });
        p.observe(&TraceEvent::ArrayInterval {
            array: 0,
            phase: ArrayPhase::Reconfig,
            start: 0,
            end: 100,
            job: Some(1),
            kernel: Some("dct8".into()),
        });
        p.observe(&TraceEvent::ArrayInterval {
            array: 0,
            phase: ArrayPhase::Exec,
            start: 100,
            end: 500,
            job: Some(1),
            kernel: Some("dct8".into()),
        });
        p.observe(&TraceEvent::ArrayInterval {
            array: 0,
            phase: ArrayPhase::Idle,
            start: 500,
            end: 540,
            job: None,
            kernel: None,
        });
        p.observe(&TraceEvent::JobComplete {
            t: 540,
            job: 1,
            checksum: 0,
            energy: EnergyBreakdown::default(),
        });
        let mut mix = OpMix::new();
        mix.add(OpClass::AddSub, 3);
        mix.add(OpClass::Reg, 1);
        let flame = flamegraph(&p, &[("dct8".into(), "aa".repeat(16), mix)]);
        assert_eq!(flame.get("soc;array0;kernel:dct8;op:add_sub"), 300);
        assert_eq!(flame.get("soc;array0;kernel:dct8;op:reg"), 100);
        assert_eq!(flame.get("soc;array0;kernel:dct8;reconfig"), 100);
        assert_eq!(flame.get("soc;array0;idle"), 40);
        assert_eq!(flame.total(), 540, "every pool cycle lands in a leaf");
        // Without a mix the busy cycles fall back to an exec leaf.
        let bare = flamegraph(&p, &[]);
        assert_eq!(bare.get("soc;array0;kernel:dct8;exec"), 400);
        assert_eq!(bare.total(), 540);
    }
}
