//! # dsra-profile — cycle-exact attribution profiling
//!
//! `dsra-trace` records *what happened*; this crate answers *where the
//! cycles and joules went*. A [`ProfileSink`] tees the virtual-time
//! trace-event stream into a shared [`Profiler`] while forwarding every
//! event to the wrapped inner sink, so profiling composes with
//! `--trace` recording and `--monitor` health queries. The profiler
//! joins `JobSchedule` routing, `ArrayInterval` occupancy, and
//! `JobComplete` energy into per-array / per-kernel accounts;
//! [`ProfileReport`] then splits each kernel's busy cycles over its
//! static op mix ([`dsra_sim::OpMix::attribute`], an exact
//! largest-remainder split) for the hot-op ranking, and [`flamegraph`]
//! renders the whole pool as collapsed stacks
//! (`soc;array0;kernel:dct8;op:mac 48211`) for inferno/speedscope.
//!
//! Everything is deterministic in virtual time: the same seed yields
//! byte-identical reports, counter tracks, and flamegraphs — and
//! because the profiler is a pure observer on the sink seam, enabling
//! it never changes job outputs or report digests.
//!
//! ```
//! use dsra_profile::{flamegraph, Profiler, ProfileReport};
//! use dsra_trace::{ArrayPhase, TraceEvent};
//!
//! let mut prof = Profiler::new();
//! prof.observe(&TraceEvent::ArrayInterval {
//!     array: 0,
//!     phase: ArrayPhase::Idle,
//!     start: 0,
//!     end: 250,
//!     job: None,
//!     kernel: None,
//! });
//! let report = ProfileReport::build(&prof, &[]);
//! assert_eq!(report.arrays[0].phases.idle, 250);
//! assert_eq!(flamegraph(&prof, &[]).render(), "soc;array0;idle 250\n");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod flame;
pub mod profiler;
pub mod report;

pub use flame::{flamegraph, frame_label, Flame};
pub use profiler::{
    ArrayAccount, JobRoute, KernelCycles, KernelEnergy, PhaseBreakdown, ProfileSink, Profiler,
    ProfilerHandle,
};
pub use report::{utilization_tracks, ArrayUtilization, HotOp, KernelProfile, ProfileReport};
