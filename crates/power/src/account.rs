//! Per-array energy accounting: integrates static (leakage) and dynamic
//! (activity) energy over a serve, in joule-denominated arbitrary units.
//!
//! One [`EnergyAccount`] per array. Active cycles charge both halves of
//! the [`EnergySplit`]; idle cycles charge leakage only — unless the
//! array is power-gated, in which case they charge nothing (and are
//! tallied separately so reports can show what gating saved).

use dsra_sim::Activity;
use dsra_tech::{EnergySplit, TechModel};

use crate::dvfs::OperatingPoint;

/// A point-in-time snapshot of an account's three energy components.
///
/// Tracing takes one of these before and after a job's reconfig + exec
/// window and attributes the component-wise difference to the job; the
/// digest-visible per-job `energy_j` stays `total_j() - before` so the
/// split is a pure observability addition.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyTotals {
    /// Activity-based dynamic energy (joules).
    pub dynamic_j: f64,
    /// Leakage energy (joules).
    pub static_j: f64,
    /// Configuration-plane write energy (joules).
    pub reconfig_j: f64,
}

impl EnergyTotals {
    /// Sum of all three components.
    pub fn total_j(&self) -> f64 {
        self.dynamic_j + self.static_j + self.reconfig_j
    }

    /// Component-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: &EnergyTotals) -> EnergyTotals {
        EnergyTotals {
            dynamic_j: self.dynamic_j - earlier.dynamic_j,
            static_j: self.static_j - earlier.static_j,
            reconfig_j: self.reconfig_j - earlier.reconfig_j,
        }
    }
}

/// Energy integrated by one array over one serve.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyAccount {
    /// Display label (array id / kind).
    pub label: String,
    /// Activity-based dynamic energy (joules).
    pub dynamic_j: f64,
    /// Leakage energy (joules), active and idle.
    pub static_j: f64,
    /// Configuration-plane write energy (joules).
    pub reconfig_j: f64,
    /// Cycles spent executing or reconfiguring.
    pub active_cycles: u64,
    /// Cycles spent idle but powered (leaking).
    pub idle_cycles: u64,
    /// Idle cycles spent power-gated (leaking nothing).
    pub gated_cycles: u64,
}

impl EnergyAccount {
    /// A zeroed account.
    pub fn new(label: impl Into<String>) -> Self {
        EnergyAccount {
            label: label.into(),
            dynamic_j: 0.0,
            static_j: 0.0,
            reconfig_j: 0.0,
            active_cycles: 0,
            idle_cycles: 0,
            gated_cycles: 0,
        }
    }

    /// Charges `cycles` of execution on a kernel with the given energy
    /// split: dynamic switching plus leakage, both DVFS-scaled.
    pub fn charge_active(&mut self, cycles: u64, split: &EnergySplit, point: &OperatingPoint) {
        let c = cycles as f64;
        self.dynamic_j += c * split.dyn_energy_per_cycle * point.dyn_energy_scale();
        self.static_j += c * point.leak_energy_per_cycle(split.leak_power);
        self.active_cycles += cycles;
    }

    /// Charges `cycles` of idleness while the plane leaking `leak_power`
    /// stays powered — or nothing at all when `gated`.
    pub fn charge_idle(
        &mut self,
        cycles: u64,
        leak_power: f64,
        point: &OperatingPoint,
        gated: bool,
    ) {
        if gated {
            self.gated_cycles += cycles;
        } else {
            self.static_j += cycles as f64 * point.leak_energy_per_cycle(leak_power);
            self.idle_cycles += cycles;
        }
    }

    /// Integrates measured switching activity into dynamic energy, priced
    /// exactly as `dsra_tech::dsra_cost` prices it (wire toggles over the
    /// mean net length plus cluster-output toggles), DVFS-scaled. Returns
    /// the joules added.
    pub fn charge_activity(
        &mut self,
        activity: &Activity,
        model: &TechModel,
        mean_net_hops: f64,
        point: &OperatingPoint,
    ) -> f64 {
        let wire = activity.total_net_toggles() as f64 * model.e_wire_hop * mean_net_hops;
        let cluster = activity.total_node_toggles() as f64 * model.e_cluster_toggle;
        let joules = (wire + cluster) * point.dyn_energy_scale();
        self.dynamic_j += joules;
        joules
    }

    /// Charges a reconfiguration that wrote `bits` configuration bits at
    /// `energy_per_bit` (a dynamic, V²-scaled cost — config writes are
    /// switching events on the configuration plane).
    pub fn charge_reconfig(&mut self, bits: u64, energy_per_bit: f64, point: &OperatingPoint) {
        self.reconfig_j += bits as f64 * energy_per_bit * point.dyn_energy_scale();
    }

    /// Everything this account has integrated.
    pub fn total_j(&self) -> f64 {
        self.dynamic_j + self.static_j + self.reconfig_j
    }

    /// Snapshot of the three components (see [`EnergyTotals`]).
    pub fn totals(&self) -> EnergyTotals {
        EnergyTotals {
            dynamic_j: self.dynamic_j,
            static_j: self.static_j,
            reconfig_j: self.reconfig_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split() -> EnergySplit {
        EnergySplit {
            dyn_energy_per_cycle: 40.0,
            leak_power: 10.0,
        }
    }

    #[test]
    fn active_charges_both_halves() {
        let mut a = EnergyAccount::new("da0");
        a.charge_active(100, &split(), &OperatingPoint::NOMINAL);
        assert!((a.dynamic_j - 4000.0).abs() < 1e-9);
        assert!((a.static_j - 1000.0).abs() < 1e-9);
        assert_eq!(a.active_cycles, 100);
        assert!((a.total_j() - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn gated_idle_is_free_and_tallied() {
        let mut powered = EnergyAccount::new("p");
        let mut gated = EnergyAccount::new("g");
        powered.charge_idle(500, 10.0, &OperatingPoint::NOMINAL, false);
        gated.charge_idle(500, 10.0, &OperatingPoint::NOMINAL, true);
        assert!((powered.static_j - 5000.0).abs() < 1e-9);
        assert_eq!(powered.idle_cycles, 500);
        assert_eq!(gated.total_j(), 0.0);
        assert_eq!(gated.gated_cycles, 500);
    }

    #[test]
    fn totals_snapshot_differences_attribute_per_window_energy() {
        let mut a = EnergyAccount::new("da0");
        a.charge_active(50, &split(), &OperatingPoint::NOMINAL);
        let before = a.totals();
        a.charge_reconfig(1000, 0.5, &OperatingPoint::NOMINAL);
        a.charge_active(100, &split(), &OperatingPoint::NOMINAL);
        let delta = a.totals().since(&before);
        assert!((delta.reconfig_j - 500.0).abs() < 1e-9);
        assert!((delta.dynamic_j - 4000.0).abs() < 1e-9);
        assert!((delta.static_j - 1000.0).abs() < 1e-9);
        assert!((delta.total_j() - (a.total_j() - before.total_j())).abs() < 1e-9);
    }

    #[test]
    fn eco_point_cuts_dynamic_energy() {
        let mut nominal = EnergyAccount::new("n");
        let mut eco = EnergyAccount::new("e");
        nominal.charge_active(100, &split(), &OperatingPoint::NOMINAL);
        eco.charge_active(100, &split(), &OperatingPoint::ECO);
        assert!(eco.dynamic_j < nominal.dynamic_j);
        // …while each (longer) eco cycle soaks up more leakage.
        assert!(eco.static_j > nominal.static_j);
    }
}
