//! DVFS operating points: voltage/frequency pairs scaling the technology
//! model's two energy classes.
//!
//! Dynamic energy per operation scales with the square of the supply
//! voltage (CV² switching); leakage *power* scales roughly linearly with
//! voltage, and because it is paid per unit time rather than per toggle,
//! running slower makes every operation carry more leakage — the classic
//! DVFS trade-off the energy accounts integrate.

/// Nominal supply voltage every [`crate::EnergySplit`]-derived number is
/// calibrated at (arbitrary volts; only ratios matter, DESIGN.md §2).
pub const NOMINAL_VOLTAGE: f64 = 1.2;

/// Nominal array clock — matches `dsra_platform::SocConfig::clock_mhz`,
/// so one simulated cycle is one time unit at this point.
pub const NOMINAL_FREQ_MHZ: f64 = 100.0;

/// One voltage/frequency operating point of the array power domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Display name.
    pub name: &'static str,
    /// Supply voltage (arbitrary volts, nominal 1.2).
    pub voltage: f64,
    /// Clock frequency in MHz (nominal 100).
    pub freq_mhz: f64,
}

impl OperatingPoint {
    /// Overdrive: fastest, most energy per operation.
    pub const TURBO: OperatingPoint = OperatingPoint {
        name: "turbo",
        voltage: 1.32,
        freq_mhz: 133.0,
    };
    /// The calibration point of the technology model.
    pub const NOMINAL: OperatingPoint = OperatingPoint {
        name: "nominal",
        voltage: NOMINAL_VOLTAGE,
        freq_mhz: NOMINAL_FREQ_MHZ,
    };
    /// Battery-saver point.
    pub const ECO: OperatingPoint = OperatingPoint {
        name: "eco",
        voltage: 1.0,
        freq_mhz: 66.0,
    };
    /// Deep power saving (near-threshold-ish).
    pub const CRAWL: OperatingPoint = OperatingPoint {
        name: "crawl",
        voltage: 0.85,
        freq_mhz: 33.0,
    };

    /// The supported points, fastest first. Voltage and frequency are
    /// jointly monotone down the table, so a lower V·f product always
    /// means lower dynamic energy per operation (pinned by a property
    /// test).
    pub const ALL: [OperatingPoint; 4] = [
        OperatingPoint::TURBO,
        OperatingPoint::NOMINAL,
        OperatingPoint::ECO,
        OperatingPoint::CRAWL,
    ];

    /// Dynamic-energy multiplier vs. nominal: (V / V_nom)².
    pub fn dyn_energy_scale(&self) -> f64 {
        let r = self.voltage / NOMINAL_VOLTAGE;
        r * r
    }

    /// Leakage-power multiplier vs. nominal: V / V_nom.
    pub fn leak_power_scale(&self) -> f64 {
        self.voltage / NOMINAL_VOLTAGE
    }

    /// Clock speed-up vs. nominal (cycles per time unit).
    pub fn freq_scale(&self) -> f64 {
        self.freq_mhz / NOMINAL_FREQ_MHZ
    }

    /// The V·f product — the conventional "how hard is this point
    /// driven" ordering key.
    pub fn vf_product(&self) -> f64 {
        self.voltage * self.freq_mhz
    }

    /// Leakage *energy* charged per cycle at this point: leakage power
    /// scales down with voltage, but a slower clock stretches every cycle,
    /// so the per-cycle share is `leak × (V/V_nom) / (f/f_nom)`.
    pub fn leak_energy_per_cycle(&self, leak_power: f64) -> f64 {
        leak_power * self.leak_power_scale() / self.freq_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_scales_are_unity() {
        let p = OperatingPoint::NOMINAL;
        assert!((p.dyn_energy_scale() - 1.0).abs() < 1e-12);
        assert!((p.leak_power_scale() - 1.0).abs() < 1e-12);
        assert!((p.freq_scale() - 1.0).abs() < 1e-12);
        assert!((p.leak_energy_per_cycle(7.0) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn table_is_jointly_monotone() {
        for w in OperatingPoint::ALL.windows(2) {
            assert!(w[0].voltage > w[1].voltage);
            assert!(w[0].freq_mhz > w[1].freq_mhz);
            assert!(w[0].vf_product() > w[1].vf_product());
        }
    }

    #[test]
    fn slow_points_pay_more_leakage_per_cycle() {
        // The DVFS trade-off: CRAWL's cycles are 3x longer than nominal,
        // so even at lower voltage each cycle soaks up more leakage.
        let leak = 100.0;
        assert!(
            OperatingPoint::CRAWL.leak_energy_per_cycle(leak)
                > OperatingPoint::NOMINAL.leak_energy_per_cycle(leak)
        );
    }
}
