//! # dsra-power — battery, DVFS and energy accounting
//!
//! The paper's headline claims are *power* claims (−75 % for the ME
//! array, §3.6's activity-driven energy differences between DCT
//! mappings), and its §5 motivation is a battery: "different run-time
//! constraints, such as low-battery conditions". This crate turns the
//! repo's one-shot offline energy table (E9) into a subsystem the
//! runtime can actually serve against:
//!
//! * a [`Battery`] — capacity in (arbitrary) joules, drained by measured
//!   per-serve energy, never negative;
//! * [`OperatingPoint`]s — DVFS pairs scaling dynamic energy ∝ V² and
//!   leakage ∝ V, with leakage paid per *time* so slow clocks soak up
//!   more of it per cycle;
//! * [`EnergyAccount`]s — per-array integration of static + dynamic
//!   energy from `dsra_tech::EnergySplit` costs and `dsra_sim::Activity`
//!   counters, with power-gating of idle arrays;
//! * the [`energy_per_block`] bridge both E9 (`dct_energy`) and the
//!   runtime profiles consume, so the offline table and the serving
//!   stack cannot drift.
//!
//! ## Quick tour
//!
//! ```
//! use dsra_power::{energy_per_block, Battery, EnergyAccount, OperatingPoint};
//! use dsra_tech::EnergySplit;
//!
//! let split = EnergySplit { dyn_energy_per_cycle: 40.0, leak_power: 10.0 };
//! // At the nominal point a 16-cycle block costs (40 + 10) × 16 joules…
//! let nominal = energy_per_block(&split, 16, &OperatingPoint::NOMINAL);
//! assert!((nominal - 800.0).abs() < 1e-9);
//! // …and the eco point trades voltage for time: cheaper switching,
//! // more leakage soaked per (longer) cycle.
//! let eco = energy_per_block(&split, 16, &OperatingPoint::ECO);
//! assert!(eco < nominal);
//!
//! // A battery serves blocks until it runs dry — never below zero.
//! let mut battery = Battery::new(2000.0);
//! let mut blocks = 0;
//! while !battery.is_empty() {
//!     battery.drain(nominal);
//!     blocks += 1;
//! }
//! assert_eq!(blocks, 3); // 800 + 800 + saturated remainder
//! # let _ = EnergyAccount::new("doc");
//! ```

#![warn(missing_docs)]

pub mod account;
pub mod battery;
pub mod dvfs;

pub use account::{EnergyAccount, EnergyTotals};
pub use battery::{burn_projection, Battery};
pub use dvfs::{OperatingPoint, NOMINAL_FREQ_MHZ, NOMINAL_VOLTAGE};

use dsra_tech::EnergySplit;

/// Energy one cycle costs at an operating point: V²-scaled dynamic energy
/// plus the leakage the (V-scaled, 1/f-stretched) cycle soaks up.
pub fn energy_per_cycle(split: &EnergySplit, point: &OperatingPoint) -> f64 {
    split.dyn_energy_per_cycle * point.dyn_energy_scale()
        + point.leak_energy_per_cycle(split.leak_power)
}

/// Energy one block costs: [`energy_per_cycle`] × cycles. This is *the*
/// energy-per-block producer — `dsra_platform::profile_impl` and the E9
/// `dct_energy` table both call it, so the number the run-time policies
/// select on and the number the offline table prints are one number.
pub fn energy_per_block(split: &EnergySplit, cycles_per_block: u64, point: &OperatingPoint) -> f64 {
    energy_per_cycle(split, point) * cycles_per_block as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_energy_per_block_matches_legacy_power_times_cycles() {
        // Pre-power-subsystem, profiles priced a block as
        // `ImplCost::power() * cycles`. The nominal operating point must
        // reproduce that exactly or every E7/E11 selection would shift.
        let split = EnergySplit {
            dyn_energy_per_cycle: 123.25,
            leak_power: 77.5,
        };
        let legacy = (split.dyn_energy_per_cycle + split.leak_power) * 14.0;
        assert!((energy_per_block(&split, 14, &OperatingPoint::NOMINAL) - legacy).abs() < 1e-9);
    }
}
