//! The battery: a finite energy reservoir in (arbitrary) joules.
//!
//! Everything here is plain saturating f64 arithmetic — deterministic,
//! platform-independent, and incapable of going negative, which the
//! property tests pin. The runtime drains it from the per-serve energy
//! totals; the `battery_serve` experiment (E12) runs it to empty.

/// A battery with a fixed capacity and a current charge, both in the
/// technology model's arbitrary energy units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    capacity_j: f64,
    charge_j: f64,
}

impl Battery {
    /// A full battery of `capacity_j` (non-finite or negative capacities
    /// are clamped to zero).
    pub fn new(capacity_j: f64) -> Self {
        let capacity_j = if capacity_j.is_finite() {
            capacity_j.max(0.0)
        } else {
            0.0
        };
        Battery {
            capacity_j,
            charge_j: capacity_j,
        }
    }

    /// Design capacity.
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j
    }

    /// Remaining charge.
    pub fn charge_j(&self) -> f64 {
        self.charge_j
    }

    /// Remaining charge as a fraction of capacity in `[0, 1]` (an empty
    /// zero-capacity battery reads 0).
    pub fn fraction(&self) -> f64 {
        if self.capacity_j <= 0.0 {
            0.0
        } else {
            self.charge_j / self.capacity_j
        }
    }

    /// Remaining charge in whole percent, rounded — the reading
    /// `dsra_platform::Condition::LowBattery` carries.
    pub fn charge_pct(&self) -> u8 {
        (self.fraction() * 100.0).round().clamp(0.0, 100.0) as u8
    }

    /// `true` once fully discharged.
    pub fn is_empty(&self) -> bool {
        self.charge_j <= 0.0
    }

    /// Draws `joules`, saturating at empty; returns what was actually
    /// drained. Non-finite or negative requests drain nothing (a battery
    /// is not charged by accounting glitches).
    pub fn drain(&mut self, joules: f64) -> f64 {
        if !joules.is_finite() || joules <= 0.0 {
            return 0.0;
        }
        let drained = joules.min(self.charge_j);
        self.charge_j -= drained;
        drained
    }

    /// Back to full capacity.
    pub fn recharge_full(&mut self) {
        self.charge_j = self.capacity_j;
    }
}

/// Linear burn-rate estimate over a discharge trajectory segment: given
/// the `(cycle, charge_j)` endpoints, returns the burn rate in joules
/// per megacycle and the projected cycle at which the charge reaches
/// zero (extrapolating the segment's slope). A flat or charging segment
/// — or a degenerate one with no cycle span — burns nothing and
/// projects no empty point.
pub fn burn_projection(first: (u64, f64), last: (u64, f64)) -> (f64, Option<u64>) {
    let (first_t, first_j) = first;
    let (last_t, last_j) = last;
    if last_t <= first_t || first_j <= last_j {
        return (0.0, None);
    }
    let per_cycle = (first_j - last_j) / (last_t - first_t) as f64;
    let cycles_left = last_j.max(0.0) / per_cycle;
    let projected = if cycles_left < (u64::MAX - last_t) as f64 {
        Some(last_t + cycles_left as u64)
    } else {
        None
    };
    (per_cycle * 1e6, projected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_saturates_at_empty() {
        let mut b = Battery::new(10.0);
        assert_eq!(b.drain(4.0), 4.0);
        assert_eq!(b.charge_pct(), 60);
        assert_eq!(b.drain(100.0), 6.0);
        assert!(b.is_empty());
        assert_eq!(b.charge_j(), 0.0);
        b.recharge_full();
        assert_eq!(b.charge_j(), 10.0);
    }

    #[test]
    fn burn_projection_extrapolates_the_discharge_slope() {
        // 100 J over 1_000_000 cycles = 100 J/Mcyc; 900 J left lasts
        // another 9_000_000 cycles.
        let (burn, empty) = burn_projection((0, 1_000.0), (1_000_000, 900.0));
        assert!((burn - 100.0).abs() < 1e-9);
        assert_eq!(empty, Some(10_000_000));
        // Flat, charging, or degenerate segments project nothing.
        assert_eq!(burn_projection((0, 5.0), (100, 5.0)), (0.0, None));
        assert_eq!(burn_projection((0, 5.0), (100, 6.0)), (0.0, None));
        assert_eq!(burn_projection((50, 5.0), (50, 4.0)), (0.0, None));
    }

    #[test]
    fn bogus_requests_drain_nothing() {
        let mut b = Battery::new(5.0);
        assert_eq!(b.drain(-1.0), 0.0);
        assert_eq!(b.drain(f64::NAN), 0.0);
        assert_eq!(b.drain(f64::INFINITY), 0.0);
        assert_eq!(b.charge_j(), 5.0);
        assert_eq!(Battery::new(f64::NAN).capacity_j(), 0.0);
        assert_eq!(Battery::new(0.0).fraction(), 0.0);
    }
}
