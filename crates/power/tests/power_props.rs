//! Property tests for the power subsystem (ISSUE 3 satellite): energy is
//! monotone in activity, gating never costs energy, the DVFS table is
//! sane, and the battery cannot go negative.

use dsra_power::{energy_per_cycle, Battery, EnergyAccount, OperatingPoint};
use dsra_sim::Activity;
use dsra_tech::{EnergySplit, TechModel};
use proptest::prelude::*;

proptest! {
    /// More toggles can never cost less dynamic energy: charging an
    /// account with element-wise larger activity yields ≥ joules, at
    /// every operating point.
    #[test]
    fn energy_is_monotone_in_toggle_counts(
        net in 0u64..10_000,
        node in 0u64..10_000,
        extra_net in 0u64..10_000,
        extra_node in 0u64..10_000,
        hops_milli in 1000u64..5000,
    ) {
        let model = TechModel::default();
        let hops = hops_milli as f64 / 1000.0;
        let base = Activity::synthetic(vec![net, net / 2], vec![node], 64);
        let more = Activity::synthetic(
            vec![net + extra_net, net / 2 + extra_net],
            vec![node + extra_node],
            64,
        );
        for point in OperatingPoint::ALL {
            let mut a = EnergyAccount::new("a");
            let mut b = EnergyAccount::new("b");
            let ja = a.charge_activity(&base, &model, hops, &point);
            let jb = b.charge_activity(&more, &model, hops, &point);
            prop_assert!(jb >= ja, "{jb} < {ja} at {}", point.name);
            prop_assert!(ja >= 0.0);
        }
    }

    /// Power-gating an idle array never increases total energy, whatever
    /// the leakage, duration or operating point.
    #[test]
    fn gating_an_idle_array_never_increases_energy(
        cycles in 0u64..1_000_000,
        leak_milli in 0u64..10_000_000,
        active in 0u64..10_000,
    ) {
        let leak = leak_milli as f64 / 1000.0;
        let split = EnergySplit { dyn_energy_per_cycle: 17.0, leak_power: leak };
        for point in OperatingPoint::ALL {
            let mut powered = EnergyAccount::new("p");
            let mut gated = EnergyAccount::new("g");
            // Same productive work on both…
            powered.charge_active(active, &split, &point);
            gated.charge_active(active, &split, &point);
            // …then the same idle stretch, gated on one side only.
            powered.charge_idle(cycles, leak, &point, false);
            gated.charge_idle(cycles, leak, &point, true);
            prop_assert!(gated.total_j() <= powered.total_j());
            prop_assert_eq!(gated.gated_cycles, cycles);
        }
    }

    /// Every DVFS point with a lower V·f product costs ≤ dynamic energy
    /// per operation (dynamic energy scales with V², and the table keeps
    /// V monotone in V·f).
    #[test]
    fn lower_vf_point_never_costs_more_dynamic_energy_per_op(
        dyn_milli in 0u64..1_000_000,
    ) {
        let e = dyn_milli as f64 / 1000.0;
        for a in OperatingPoint::ALL {
            for b in OperatingPoint::ALL {
                if a.vf_product() <= b.vf_product() {
                    prop_assert!(
                        e * a.dyn_energy_scale() <= e * b.dyn_energy_scale(),
                        "{} vs {}", a.name, b.name
                    );
                }
            }
        }
    }

    /// The battery never goes negative, whatever sequence of drains is
    /// thrown at it, and drained totals never exceed capacity.
    #[test]
    fn battery_never_goes_negative(
        capacity_milli in 0u64..10_000_000,
        d0 in 0u64..5_000_000,
        d1 in 0u64..5_000_000,
        d2 in 0u64..5_000_000,
        d3 in 0u64..5_000_000,
    ) {
        let capacity = capacity_milli as f64 / 1000.0;
        let mut battery = Battery::new(capacity);
        let mut drained = 0.0;
        for d in [d0, d1, d2, d3] {
            drained += battery.drain(d as f64 / 1000.0);
            prop_assert!(battery.charge_j() >= 0.0);
            prop_assert!(battery.fraction() >= 0.0 && battery.fraction() <= 1.0);
            prop_assert!(battery.charge_pct() <= 100);
        }
        prop_assert!(drained <= capacity + 1e-9);
        prop_assert!((battery.charge_j() + drained - capacity).abs() < 1e-6);
    }
}

/// Non-property sanity: energy_per_cycle is the sum of its DVFS-scaled
/// halves at every point (no hidden cross terms).
#[test]
fn energy_per_cycle_decomposes() {
    let split = EnergySplit {
        dyn_energy_per_cycle: 31.0,
        leak_power: 9.0,
    };
    for point in OperatingPoint::ALL {
        let whole = energy_per_cycle(&split, &point);
        let parts = 31.0 * point.dyn_energy_scale() + point.leak_energy_per_cycle(9.0);
        assert!((whole - parts).abs() < 1e-12, "{}", point.name);
    }
}
