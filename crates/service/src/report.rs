//! The SLO report: what one streaming session did to every request,
//! tenant by tenant, with energy attribution from the runtime's pool
//! summary.
//!
//! Everything here is a pure function of the (deterministic) dispatch
//! result, so two runs over the same trace render byte-identical reports
//! — the property the E13 acceptance gate pins via [`ServiceReport::digest`].

use dsra_runtime::StreamSummary;

use crate::trace::TenantSpec;

/// What happened to one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestOutcome {
    /// Request id (dense, arrival order).
    pub id: u32,
    /// Owning tenant.
    pub tenant: u16,
    /// Payload kind tag (`dct` / `me` / `encode`).
    pub kind: &'static str,
    /// Arrival time in virtual µs.
    pub arrival_us: u64,
    /// Latest admissible completion.
    pub deadline_us: u64,
    /// `true` if the request was shed instead of served.
    pub shed: bool,
    /// `true` if the request was dispatched but failed after the
    /// recovery hook's retry budget (its corrupt result was withheld).
    /// Always `false` without a chaos hook; like `shed_wait_us`,
    /// deliberately NOT folded into [`ServiceReport::digest`], so
    /// fault-free digests are unchanged.
    pub failed: bool,
    /// Array that served it (meaningless when shed or failed).
    pub array: usize,
    /// Execution start in virtual µs (shed: the shed instant).
    pub start_us: u64,
    /// Completion in virtual µs (shed: the shed instant).
    pub end_us: u64,
    /// Serve latency (`end - arrival`; 0 when shed).
    pub latency_us: u64,
    /// `true` if the request was served but finished past its deadline.
    pub violated: bool,
    /// Queue residency at the shed instant (µs; 0 when served) — how late
    /// the shed decision fell. Schema addition for `shed_wait_p99`
    /// reporting; deliberately NOT folded into [`ServiceReport::digest`].
    pub shed_wait_us: u64,
    /// Bits the switch before this request rewrote (full bitstream on an
    /// elastic-pool wake).
    pub reconfig_bits: u64,
    /// Deterministic output digest (0 when shed).
    pub checksum: u64,
    /// Energy attributed to this request (0 when shed), joules.
    pub energy_j: f64,
}

/// One tenant's slice of the session.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// The tenant (spec copied in so the report is self-contained).
    pub spec: TenantSpec,
    /// Requests the tenant submitted.
    pub submitted: usize,
    /// Requests served to completion.
    pub served: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Served requests that finished past their deadline.
    pub violations: usize,
    /// Goodput: served-within-SLO requests as a percentage of submitted.
    pub goodput_pct: f64,
    /// `true` while the shed fraction stays within the tenant's declared
    /// tolerance.
    pub shed_within_tolerance: bool,
    /// Worst served latency (µs).
    pub max_latency_us: u64,
    /// Joules attributed to the tenant's served requests.
    pub energy_j: f64,
}

/// The full session report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Admission policy display name.
    pub policy: &'static str,
    /// Virtual trace length (arrivals stop here).
    pub duration_us: u64,
    /// Virtual time the last served request completed.
    pub makespan_us: u64,
    /// Requests submitted across all tenants.
    pub requests: usize,
    /// Requests served to completion.
    pub served: usize,
    /// Requests shed.
    pub shed: usize,
    /// Requests dispatched but failed after the recovery hook's retry
    /// budget — corrupt results withheld rather than served. Zero
    /// without a chaos hook, so `requests == served + shed` holds in
    /// every fault-free session (`requests == served + shed + failed`
    /// in general).
    pub failed: usize,
    /// Served requests that missed their deadline.
    pub violations: usize,
    /// Per-array energy and work totals from the runtime, including the
    /// elastic pool's gate/wake counters.
    pub pool: StreamSummary,
    /// Per-tenant aggregates (tenant-id order).
    pub tenants: Vec<TenantReport>,
    /// Per-request outcomes (request-id order).
    pub outcomes: Vec<RequestOutcome>,
    /// Final health snapshot when an online monitor was installed
    /// (`None` otherwise). Deliberately outside [`ServiceReport::digest`]:
    /// the digest pins dispatch decisions, which must not move when
    /// observation is switched on.
    pub health: Option<dsra_trace::HealthSnapshot>,
}

impl ServiceReport {
    /// Served latencies in µs, sorted ascending — feed these to the
    /// fixed-bucket histogram (`dsra_bench::hist`) for p50/p90/p99.
    pub fn sorted_latencies_us(&self) -> Vec<u64> {
        let mut l: Vec<u64> = self
            .outcomes
            .iter()
            .filter(|o| !o.shed)
            .map(|o| o.latency_us)
            .collect();
        l.sort_unstable();
        l
    }

    /// Queue residencies of the shed requests in µs, sorted ascending —
    /// the `shed_wait_p99` input (how late the shed decisions fell).
    pub fn sorted_shed_waits_us(&self) -> Vec<u64> {
        let mut w: Vec<u64> = self
            .outcomes
            .iter()
            .filter(|o| o.shed)
            .map(|o| o.shed_wait_us)
            .collect();
        w.sort_unstable();
        w
    }

    /// Served requests that met their deadline, as a fraction of all
    /// submitted requests — the service-wide goodput.
    pub fn goodput_pct(&self) -> f64 {
        if self.requests == 0 {
            return 100.0;
        }
        (self.served - self.violations) as f64 * 100.0 / self.requests as f64
    }

    /// SLO violations as a fraction of submitted requests (percent).
    pub fn violation_pct(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.violations as f64 * 100.0 / self.requests as f64
    }

    /// Shed requests as a fraction of submitted requests (percent).
    pub fn shed_pct(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.shed as f64 * 100.0 / self.requests as f64
    }

    /// Times the elastic pool powered an idle array off.
    pub fn gate_events(&self) -> usize {
        self.pool.gate_events
    }

    /// Times a gated array was woken back up.
    pub fn wakes(&self) -> usize {
        self.pool.wakes
    }

    /// Joules per *served* request (what the battery actually bought).
    pub fn joules_per_served(&self) -> f64 {
        if self.served == 0 {
            return 0.0;
        }
        self.pool.total_j() / self.served as f64
    }

    /// Deterministic digest over every request outcome, the tenant
    /// aggregates and the pool energy — one number that changes if any
    /// dispatch decision, payload result, shed verdict or attributed
    /// joule changes.
    pub fn digest(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut mix = |v: u64| {
            h = dsra_core::rng::fnv1a_fold(h, v);
        };
        for o in &self.outcomes {
            mix(u64::from(o.id));
            mix(u64::from(o.tenant));
            mix(u64::from(o.shed));
            mix(o.array as u64);
            mix(o.start_us);
            mix(o.end_us);
            mix(o.latency_us);
            mix(u64::from(o.violated));
            mix(o.reconfig_bits);
            mix(o.checksum);
            mix(o.energy_j.to_bits());
        }
        for t in &self.tenants {
            mix(t.submitted as u64);
            mix(t.served as u64);
            mix(t.shed as u64);
            mix(t.violations as u64);
            mix(t.energy_j.to_bits());
        }
        mix(self.pool.gate_events as u64);
        mix(self.pool.wakes as u64);
        mix(self.pool.total_j().to_bits());
        mix(self.pool.gated_cycles());
        h
    }

    /// Human-readable summary (stable across runs for the same trace).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "policy             : {} ({} µs trace, makespan {} µs)\n",
            self.policy, self.duration_us, self.makespan_us
        ));
        s.push_str(&format!(
            "requests           : {} submitted, {} served, {} shed ({:.1}%), {} SLO violations ({:.1}%)\n",
            self.requests,
            self.served,
            self.shed,
            self.shed_pct(),
            self.violations,
            self.violation_pct()
        ));
        // Only chaos sessions fail requests; fault-free renders are
        // byte-identical to what they were before the field existed.
        if self.failed > 0 {
            s.push_str(&format!(
                "failed             : {} requests unrecoverable after retries (corrupt results withheld)\n",
                self.failed
            ));
        }
        s.push_str(&format!(
            "goodput            : {:.1}% of submitted served within SLO\n",
            self.goodput_pct()
        ));
        s.push_str(&format!(
            "elastic pool       : {} gate events, {} wakes, {} gated cycles\n",
            self.pool.gate_events,
            self.pool.wakes,
            self.pool.gated_cycles()
        ));
        s.push_str(&format!(
            "energy             : {:.1} J total, {:.1} J per served request\n",
            self.pool.total_j(),
            self.joules_per_served()
        ));
        s.push_str(
            "tenant  archetype    submitted  served  shed  viol  goodput%  max-lat-µs  tolerant\n",
        );
        for t in &self.tenants {
            s.push_str(&format!(
                "{:>6}  {:<11}  {:>9}  {:>6}  {:>4}  {:>4}  {:>8.1}  {:>10}  {}\n",
                t.spec.id,
                t.spec.archetype,
                t.submitted,
                t.served,
                t.shed,
                t.violations,
                t.goodput_pct,
                t.max_latency_us,
                if t.shed_within_tolerance { "yes" } else { "NO" }
            ));
        }
        s.push_str(&format!("outcome digest     : {:#018x}\n", self.digest()));
        s
    }
}
