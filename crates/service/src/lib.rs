//! # dsra-service — the open-loop multi-tenant streaming frontend
//!
//! The paper's arrays exist to serve *live* mobile video under time and
//! energy pressure; `dsra-runtime` drains a pre-planned batch queue, but a
//! production service faces arrivals it does not control, tenants with
//! different objectives, and overload it must say "no" to. This crate is
//! that missing layer (DESIGN.md §9), in virtual time and fully
//! deterministic:
//!
//! * a **trace generator** ([`trace`]): seeded per-tenant sessions —
//!   Poisson-ish bursty arrivals in virtual µs, per-tenant payload and
//!   service-class mixes (drawn through `dsra_video::sample_payload`) and
//!   an [`SloSpec`] (latency budget + shed tolerance) per tenant;
//! * an **admission queue** ([`admit`]): the FIFO-unbounded baseline vs.
//!   deadline-EDF with shedding of requests whose budget is already blown;
//! * a **dispatcher** ([`dispatch`]): a virtual-time event loop that
//!   admits, sheds, dispatches through the runtime's streaming hooks
//!   (placement stays with the existing `SchedulePolicy`/`DiffMatrix`
//!   machinery) and scales the pool elastically — idle arrays power-gate
//!   (dropping their configuration), backlog wakes them at the price of a
//!   full bitstream rewrite;
//! * an **SLO report** ([`report`]): per-tenant goodput, shed and
//!   violation counts, served latencies (feed them to `dsra_bench::hist`
//!   for p50/p90/p99), pool energy — all folded into a digest that pins
//!   byte-identical behaviour across runs (the E13 `stream_serve` gate).
//!
//! ## Quick tour
//!
//! ```
//! use dsra_runtime::{DctMapping, RuntimeConfig, SocRuntime};
//! use dsra_service::{
//!     serve_trace, standard_tenants, AdmitPolicy, ServiceConfig, TraceConfig,
//! };
//!
//! # fn main() -> Result<(), dsra_core::error::CoreError> {
//! let mut runtime = SocRuntime::new(RuntimeConfig {
//!     da_arrays: 1,
//!     me_arrays: 1,
//!     mappings: vec![DctMapping::BasicDa, DctMapping::MixedRom],
//!     ..Default::default()
//! })?;
//! let trace = TraceConfig {
//!     tenants: standard_tenants(2, 400),
//!     duration_us: 4_000,
//!     ..Default::default()
//! };
//! let report = serve_trace(&mut runtime, &trace, &ServiceConfig::default())?;
//! assert_eq!(report.policy, AdmitPolicy::EdfShed.name());
//! assert_eq!(report.requests, report.served + report.shed);
//! assert!(report.served > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod admit;
pub mod dispatch;
pub mod report;
pub mod trace;

pub use admit::{AdmissionQueue, AdmitPolicy, MonitorAwareAdmission};
pub use dispatch::{
    install_monitor, install_monitor_with, monitor_config_for, serve_requests,
    serve_requests_with_hook, serve_trace, DispatchHook, NoopDispatch, PoolConfig, ServiceConfig,
};
pub use report::{RequestOutcome, ServiceReport, TenantReport};
pub use trace::{
    generate_trace, standard_tenant, standard_tenants, Request, SloSpec, TenantSpec, TraceConfig,
};

#[cfg(test)]
mod tests {
    use super::*;
    use dsra_runtime::{DctMapping, RuntimeConfig, SocRuntime};

    fn runtime(da: usize, me: usize) -> SocRuntime {
        SocRuntime::new(RuntimeConfig {
            da_arrays: da,
            me_arrays: me,
            mappings: vec![
                DctMapping::BasicDa,
                DctMapping::MixedRom,
                DctMapping::SccFull,
            ],
            ..Default::default()
        })
        .unwrap()
    }

    fn small_trace() -> TraceConfig {
        TraceConfig {
            tenants: standard_tenants(3, 150),
            duration_us: 8_000,
            ..Default::default()
        }
    }

    #[test]
    fn dispatch_is_byte_deterministic() {
        let trace = small_trace();
        let service = ServiceConfig::default();
        let a = serve_trace(&mut runtime(2, 2), &trace, &service).unwrap();
        let b = serve_trace(&mut runtime(2, 2), &trace, &service).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.render(), b.render());
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.pool, b.pool);
    }

    #[test]
    fn every_request_is_served_or_shed_exactly_once() {
        let trace = small_trace();
        let report = serve_trace(&mut runtime(2, 2), &trace, &ServiceConfig::default()).unwrap();
        assert_eq!(report.requests, generate_trace(&trace).len());
        assert_eq!(report.requests, report.served + report.shed);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.id, i as u32);
            if !o.shed {
                assert!(o.end_us >= o.start_us);
                assert!(o.start_us >= o.arrival_us);
                assert_eq!(o.latency_us, o.end_us - o.arrival_us);
                assert!(o.energy_j > 0.0);
            }
        }
        // Tenant aggregates cover exactly the outcome rows.
        let submitted: usize = report.tenants.iter().map(|t| t.submitted).sum();
        assert_eq!(submitted, report.requests);
        // FIFO on the same trace sheds nothing.
        let fifo = ServiceConfig {
            policy: AdmitPolicy::FifoUnbounded,
            ..Default::default()
        };
        let fifo_report = serve_trace(&mut runtime(2, 2), &trace, &fifo).unwrap();
        assert_eq!(fifo_report.shed, 0, "FIFO-unbounded never sheds");
        assert_eq!(fifo_report.served, report.requests);
    }

    #[test]
    fn elastic_pool_gates_idle_arrays_and_wakes_them_for_backlog() {
        // A sparse trace with long lulls on a generous pool: the elastic
        // controller must find gating opportunities, and the session must
        // record the wake penalty when traffic returns.
        let trace = TraceConfig {
            tenants: standard_tenants(1, 2_500),
            duration_us: 30_000,
            ..Default::default()
        };
        let elastic = serve_trace(
            &mut runtime(2, 2),
            &trace,
            &ServiceConfig {
                pool: PoolConfig {
                    elastic: true,
                    gate_idle_us: 500,
                    wake_backlog: 2,
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert!(elastic.gate_events() > 0, "idle arrays must gate");
        assert!(elastic.pool.gated_cycles() > 0);
        let fixed = serve_trace(
            &mut runtime(2, 2),
            &trace,
            &ServiceConfig {
                pool: PoolConfig {
                    elastic: false,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(fixed.gate_events(), 0);
        assert_eq!(fixed.pool.gated_cycles(), 0);
        // Same requests served either way; the elastic pool leaks less
        // static energy over the idle stretches than the fixed pool.
        assert_eq!(fixed.served, elastic.served);
        let leak = |r: &ServiceReport| -> f64 { r.pool.arrays.iter().map(|a| a.static_j).sum() };
        assert!(
            leak(&elastic) < leak(&fixed),
            "gating must save leakage: {} vs {}",
            leak(&elastic),
            leak(&fixed)
        );
    }

    #[test]
    fn malformed_traces_and_impossible_payloads_are_errors() {
        use dsra_video::{JobPayload, ServiceClass};
        let spec = standard_tenant(0, 100);
        // An ME request on a pool with no ME arrays.
        let me_req = Request {
            id: 0,
            tenant: 0,
            arrival_us: 0,
            deadline_us: 1_000,
            class: ServiceClass::Quality,
            payload: JobPayload::MeSearch {
                size: (48, 48),
                shift: (1, 0),
                block: 8,
                range: 2,
            },
            seed: 1,
        };
        let service = ServiceConfig::default();
        assert!(serve_requests(&mut runtime(1, 0), &[spec], 1_000, &[me_req], &service).is_err());
        // An undersized plane is rejected at execution, not a panic.
        let undersized = Request {
            payload: JobPayload::MeSearch {
                size: (10, 10),
                shift: (1, 0),
                block: 8,
                range: 2,
            },
            ..me_req
        };
        assert!(
            serve_requests(&mut runtime(1, 1), &[spec], 1_000, &[undersized], &service).is_err()
        );
        // Non-dense ids are rejected up front.
        let misnumbered = Request { id: 7, ..me_req };
        assert!(
            serve_requests(&mut runtime(1, 1), &[spec], 1_000, &[misnumbered], &service).is_err()
        );
    }
}
