//! Admission control and load shedding.
//!
//! The dispatcher holds admitted-but-not-yet-dispatched requests here and
//! asks for the next one whenever an array frees up. Two policies:
//!
//! * [`AdmitPolicy::FifoUnbounded`] — the baseline: every request is
//!   admitted, nothing is ever shed, dispatch order is arrival order.
//!   Under overload the backlog (and tail latency) grows without bound.
//! * [`AdmitPolicy::EdfShed`] — earliest-deadline-first dispatch, and any
//!   queued request whose latency budget is already blown (its deadline
//!   has passed before it could start) is shed instead of executed —
//!   serving it would burn array time and joules on a result nobody can
//!   use, making every job behind it later too.
//!
//! The queue is a pair of per-array-kind binary heaps keyed by the
//! policy's urgency `(key, id)` — FIFO keys by arrival, EDF by deadline —
//! so push/pop/shed are `O(log n)` and per-kind depth is `O(1)` even when
//! the FIFO baseline's backlog grows to tens of thousands of requests
//! (the overload regime this layer exists to measure).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use dsra_runtime::ArrayKind;

use crate::trace::Request;

/// How the service admits, orders and sheds queued requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitPolicy {
    /// Admit everything, shed nothing, dispatch in arrival order.
    FifoUnbounded,
    /// Dispatch by earliest deadline; shed requests whose budget is
    /// already blown at dispatch time.
    EdfShed,
}

impl AdmitPolicy {
    /// Display name (E13 prints per-policy comparisons).
    pub fn name(self) -> &'static str {
        match self {
            AdmitPolicy::FifoUnbounded => "fifo",
            AdmitPolicy::EdfShed => "edf-shed",
        }
    }

    /// Parses a `--policy` argument (`fifo` / `edf` / `edf-shed`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "fifo" => Some(AdmitPolicy::FifoUnbounded),
            "edf" | "edf-shed" => Some(AdmitPolicy::EdfShed),
            _ => None,
        }
    }
}

fn kind_index(kind: ArrayKind) -> usize {
    match kind {
        ArrayKind::Da => 0,
        ArrayKind::Me => 1,
    }
}

/// The pending-request queue, ordered by the policy's key.
#[derive(Debug)]
pub struct AdmissionQueue {
    policy: AdmitPolicy,
    /// Min-heaps of `(urgency key, id)`, one per array kind. The id makes
    /// every key unique, so ordering (and with it every dispatch
    /// decision) is fully deterministic.
    heaps: [BinaryHeap<Reverse<(u64, u32)>>; 2],
    /// The requests behind the heap entries.
    requests: HashMap<u32, Request>,
}

impl AdmissionQueue {
    /// An empty queue under `policy`.
    pub fn new(policy: AdmitPolicy) -> Self {
        AdmissionQueue {
            policy,
            heaps: [BinaryHeap::new(), BinaryHeap::new()],
            requests: HashMap::new(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> AdmitPolicy {
        self.policy
    }

    /// The policy's urgency key: dispatch order is ascending in this.
    fn key(&self, r: &Request) -> u64 {
        match self.policy {
            AdmitPolicy::FifoUnbounded => r.arrival_us,
            AdmitPolicy::EdfShed => r.deadline_us,
        }
    }

    /// Requests waiting to be dispatched.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Waiting requests that need an array of `kind`.
    pub fn depth(&self, kind: ArrayKind) -> usize {
        self.heaps[kind_index(kind)].len()
    }

    /// Admits one request (open loop: admission itself never says no —
    /// saying no happens at dispatch time, where the EDF policy sheds).
    pub fn push(&mut self, request: Request) {
        let key = self.key(&request);
        self.heaps[kind_index(request.needs())].push(Reverse((key, request.id)));
        self.requests.insert(request.id, request);
    }

    /// Removes and returns every queued request whose deadline has passed
    /// at `now_us` — the EDF shedding step (under EDF the heap key *is*
    /// the deadline, so blown budgets sit at the front). FIFO never
    /// sheds.
    pub fn shed_blown(&mut self, now_us: u64) -> Vec<Request> {
        if self.policy == AdmitPolicy::FifoUnbounded {
            return Vec::new();
        }
        let mut shed = Vec::new();
        for heap in &mut self.heaps {
            while let Some(&Reverse((deadline, id))) = heap.peek() {
                if deadline > now_us {
                    break;
                }
                heap.pop();
                shed.push(self.requests.remove(&id).expect("heap and map in sync"));
            }
        }
        shed
    }

    /// Pops the policy-most-urgent request among those an available array
    /// kind can serve (`available(kind)` says whether some array of that
    /// kind is free right now). Ties break towards the lower request id,
    /// so dispatch order is deterministic.
    pub fn pop_available(&mut self, available: impl Fn(ArrayKind) -> bool) -> Option<Request> {
        let mut best: Option<(u64, u32, usize)> = None;
        for kind in [ArrayKind::Da, ArrayKind::Me] {
            if !available(kind) {
                continue;
            }
            let i = kind_index(kind);
            if let Some(&Reverse((key, id))) = self.heaps[i].peek() {
                if best.is_none_or(|(bk, bid, _)| (key, id) < (bk, bid)) {
                    best = Some((key, id, i));
                }
            }
        }
        let (_, id, i) = best?;
        self.heaps[i].pop();
        Some(self.requests.remove(&id).expect("heap and map in sync"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsra_video::{JobPayload, ServiceClass};

    fn req(id: u32, arrival: u64, deadline: u64, me: bool) -> Request {
        Request {
            id,
            tenant: 0,
            arrival_us: arrival,
            deadline_us: deadline,
            class: ServiceClass::Quality,
            payload: if me {
                JobPayload::MeSearch {
                    size: (48, 48),
                    shift: (1, 0),
                    block: 8,
                    range: 2,
                }
            } else {
                JobPayload::DctBlocks {
                    blocks: 1,
                    amplitude: 100,
                }
            },
            seed: u64::from(id),
        }
    }

    #[test]
    fn fifo_dispatches_in_arrival_order_and_never_sheds() {
        let mut q = AdmissionQueue::new(AdmitPolicy::FifoUnbounded);
        q.push(req(1, 20, 25, false));
        q.push(req(0, 10, 1_000, false));
        assert!(q.shed_blown(500).is_empty(), "FIFO never sheds");
        assert_eq!(q.pop_available(|_| true).unwrap().id, 0);
        assert_eq!(q.pop_available(|_| true).unwrap().id, 1);
        assert!(q.pop_available(|_| true).is_none());
    }

    #[test]
    fn edf_dispatches_most_urgent_first_and_sheds_blown_budgets() {
        let mut q = AdmissionQueue::new(AdmitPolicy::EdfShed);
        q.push(req(0, 0, 5_000, false)); // early arrival, lazy deadline
        q.push(req(1, 40, 100, false)); // late arrival, urgent deadline
        q.push(req(2, 10, 50, false)); // already blown at t=60
        let shed = q.shed_blown(60);
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].id, 2);
        // Most urgent surviving deadline first, not earliest arrival.
        assert_eq!(q.pop_available(|_| true).unwrap().id, 1);
        assert_eq!(q.pop_available(|_| true).unwrap().id, 0);
    }

    #[test]
    fn pop_respects_array_kind_availability() {
        let mut q = AdmissionQueue::new(AdmitPolicy::EdfShed);
        q.push(req(0, 0, 100, true)); // ME, most urgent
        q.push(req(1, 0, 200, false)); // DA
        assert_eq!(q.depth(ArrayKind::Me), 1);
        assert_eq!(q.depth(ArrayKind::Da), 1);
        // Only the DA pool is free: the DA request dispatches even though
        // the ME one is more urgent.
        let popped = q.pop_available(|k| k == ArrayKind::Da).unwrap();
        assert_eq!(popped.id, 1);
        // Nothing dispatchable while the ME pool stays busy.
        assert!(q.pop_available(|k| k == ArrayKind::Da).is_none());
        assert_eq!(q.pop_available(|k| k == ArrayKind::Me).unwrap().id, 0);
    }

    #[test]
    fn depth_counters_track_push_pop_and_shed() {
        let mut q = AdmissionQueue::new(AdmitPolicy::EdfShed);
        for id in 0..6 {
            q.push(req(id, 0, 10 + u64::from(id), id % 2 == 0));
        }
        assert_eq!(q.len(), 6);
        assert_eq!(q.depth(ArrayKind::Me), 3);
        assert_eq!(q.depth(ArrayKind::Da), 3);
        let shed = q.shed_blown(12); // deadlines 10, 11, 12 blow
        assert_eq!(shed.len(), 3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.depth(ArrayKind::Me) + q.depth(ArrayKind::Da), 3);
        q.pop_available(|_| true).unwrap();
        assert_eq!(q.len(), 2);
    }
}
