//! Admission control and load shedding.
//!
//! The dispatcher holds admitted-but-not-yet-dispatched requests here and
//! asks for the next one whenever an array frees up. Two policies:
//!
//! * [`AdmitPolicy::FifoUnbounded`] — the baseline: every request is
//!   admitted, nothing is ever shed, dispatch order is arrival order.
//!   Under overload the backlog (and tail latency) grows without bound.
//! * [`AdmitPolicy::EdfShed`] — earliest-deadline-first dispatch, and any
//!   queued request whose latency budget is already blown (its deadline
//!   has passed before it could start) is shed instead of executed —
//!   serving it would burn array time and joules on a result nobody can
//!   use, making every job behind it later too.
//! * [`AdmitPolicy::MonitorShed`] — EDF with a health-driven control
//!   hook: while a burn-rate alert is latched in the online monitor
//!   (`dsra-monitor`), [`MonitorAwareAdmission`] sheds lower-class
//!   arrivals *at admission time*, before they ever occupy queue or
//!   array capacity that interactive work needs. Shedding escalates
//!   with the breadth of the burn: one alert sheds best-effort work,
//!   two alerting tenants shed the quality tier too.
//!
//! The queue is a pair of per-array-kind binary heaps keyed by the
//! policy's urgency `(key, id)` — FIFO keys by arrival, EDF by deadline —
//! so push/pop/shed are `O(log n)` and per-kind depth is `O(1)` even when
//! the FIFO baseline's backlog grows to tens of thousands of requests
//! (the overload regime this layer exists to measure).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use dsra_monitor::MonitorHandle;
use dsra_runtime::ArrayKind;
use dsra_video::ServiceClass;

use crate::trace::Request;

/// How the service admits, orders and sheds queued requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitPolicy {
    /// Admit everything, shed nothing, dispatch in arrival order.
    FifoUnbounded,
    /// Dispatch by earliest deadline; shed requests whose budget is
    /// already blown at dispatch time.
    EdfShed,
    /// [`AdmitPolicy::EdfShed`] plus monitor-driven early shedding of
    /// lower-class arrivals while burn-rate alerts are latched (the
    /// shed tier escalates with the number of alerting tenants).
    /// Requires a monitor handle in the service configuration.
    MonitorShed,
}

impl AdmitPolicy {
    /// Display name (E13 prints per-policy comparisons).
    pub fn name(self) -> &'static str {
        match self {
            AdmitPolicy::FifoUnbounded => "fifo",
            AdmitPolicy::EdfShed => "edf-shed",
            AdmitPolicy::MonitorShed => "monitor-shed",
        }
    }

    /// Parses a `--policy` argument (`fifo` / `edf` / `edf-shed` /
    /// `monitor` / `monitor-shed`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "fifo" => Some(AdmitPolicy::FifoUnbounded),
            "edf" | "edf-shed" => Some(AdmitPolicy::EdfShed),
            "monitor" | "monitor-shed" => Some(AdmitPolicy::MonitorShed),
            _ => None,
        }
    }
}

/// The health-driven admission wrapper: polls the online monitor's
/// latched-alert count at each arrival and says no to lower-class
/// requests while error budgets are burning too fast. The decision is a
/// pure function of `(monitor state, request class)` at a virtual
/// instant, so same-seed runs shed the same requests.
///
/// Shedding escalates with the breadth of the burn: one latched alert
/// sheds only the best-effort tier (background and battery-saver work);
/// once a second tenant's budget is burning the overload is systemic and
/// the quality tier is shed too, so the array pool serves the strict
/// deadline tier first. Deadline-class work is never early-shed — its
/// protection is the point.
#[derive(Debug, Clone)]
pub struct MonitorAwareAdmission {
    monitor: MonitorHandle,
}

impl MonitorAwareAdmission {
    /// Wraps a monitor handle (clone of the one feeding the sink).
    pub fn new(monitor: MonitorHandle) -> Self {
        MonitorAwareAdmission { monitor }
    }

    /// `true` when the request's class is in the shed-first tier
    /// (background and battery-saver work).
    pub fn is_sheddable_class(class: ServiceClass) -> bool {
        matches!(class, ServiceClass::Background | ServiceClass::LowPower)
    }

    /// The latched-alert count at which arrivals of `class` are shed:
    /// best-effort work goes at the first alert, quality-tier work once
    /// the burn is systemic (two tenants alerting), deadline-tier work
    /// never (`None`).
    pub fn shed_tier(class: ServiceClass) -> Option<u32> {
        match class {
            ServiceClass::Background | ServiceClass::LowPower => Some(1),
            ServiceClass::Quality => Some(2),
            ServiceClass::Deadline(_) => None,
        }
    }

    /// Should this arrival be shed before admission? `now_cycle` is the
    /// dispatcher's current virtual instant; querying it seals monitor
    /// windows exactly as the event watermark would.
    pub fn shed_early(&self, request: &Request, now_cycle: u64) -> bool {
        match Self::shed_tier(request.class) {
            Some(tier) => self.monitor.active_alerts(now_cycle) >= tier,
            None => false,
        }
    }
}

fn kind_index(kind: ArrayKind) -> usize {
    match kind {
        ArrayKind::Da => 0,
        ArrayKind::Me => 1,
    }
}

/// The pending-request queue, ordered by the policy's key.
#[derive(Debug)]
pub struct AdmissionQueue {
    policy: AdmitPolicy,
    /// Min-heaps of `(urgency key, id)`, one per array kind. The id makes
    /// every key unique, so ordering (and with it every dispatch
    /// decision) is fully deterministic.
    heaps: [BinaryHeap<Reverse<(u64, u32)>>; 2],
    /// The requests behind the heap entries.
    requests: HashMap<u32, Request>,
}

impl AdmissionQueue {
    /// An empty queue under `policy`.
    pub fn new(policy: AdmitPolicy) -> Self {
        AdmissionQueue {
            policy,
            heaps: [BinaryHeap::new(), BinaryHeap::new()],
            requests: HashMap::new(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> AdmitPolicy {
        self.policy
    }

    /// The policy's urgency key: dispatch order is ascending in this.
    fn key(&self, r: &Request) -> u64 {
        match self.policy {
            AdmitPolicy::FifoUnbounded => r.arrival_us,
            AdmitPolicy::EdfShed | AdmitPolicy::MonitorShed => r.deadline_us,
        }
    }

    /// Requests waiting to be dispatched.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Waiting requests that need an array of `kind`.
    pub fn depth(&self, kind: ArrayKind) -> usize {
        self.heaps[kind_index(kind)].len()
    }

    /// Admits one request (open loop: admission itself never says no —
    /// saying no happens at dispatch time, where the EDF policy sheds).
    pub fn push(&mut self, request: Request) {
        let key = self.key(&request);
        self.heaps[kind_index(request.needs())].push(Reverse((key, request.id)));
        self.requests.insert(request.id, request);
    }

    /// Removes and returns every queued request whose deadline has passed
    /// at `now_us` — the EDF shedding step (under EDF the heap key *is*
    /// the deadline, so blown budgets sit at the front). FIFO never
    /// sheds.
    pub fn shed_blown(&mut self, now_us: u64) -> Vec<Request> {
        if self.policy == AdmitPolicy::FifoUnbounded {
            return Vec::new();
        }
        let mut shed = Vec::new();
        for heap in &mut self.heaps {
            while let Some(&Reverse((deadline, id))) = heap.peek() {
                if deadline > now_us {
                    break;
                }
                heap.pop();
                shed.push(self.requests.remove(&id).expect("heap and map in sync"));
            }
        }
        shed
    }

    /// Pops the policy-most-urgent request among those an available array
    /// kind can serve (`available(kind)` says whether some array of that
    /// kind is free right now). Ties break towards the lower request id,
    /// so dispatch order is deterministic.
    pub fn pop_available(&mut self, available: impl Fn(ArrayKind) -> bool) -> Option<Request> {
        let mut best: Option<(u64, u32, usize)> = None;
        for kind in [ArrayKind::Da, ArrayKind::Me] {
            if !available(kind) {
                continue;
            }
            let i = kind_index(kind);
            if let Some(&Reverse((key, id))) = self.heaps[i].peek() {
                if best.is_none_or(|(bk, bid, _)| (key, id) < (bk, bid)) {
                    best = Some((key, id, i));
                }
            }
        }
        let (_, id, i) = best?;
        self.heaps[i].pop();
        Some(self.requests.remove(&id).expect("heap and map in sync"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsra_video::{JobPayload, ServiceClass};

    fn req(id: u32, arrival: u64, deadline: u64, me: bool) -> Request {
        Request {
            id,
            tenant: 0,
            arrival_us: arrival,
            deadline_us: deadline,
            class: ServiceClass::Quality,
            payload: if me {
                JobPayload::MeSearch {
                    size: (48, 48),
                    shift: (1, 0),
                    block: 8,
                    range: 2,
                }
            } else {
                JobPayload::DctBlocks {
                    blocks: 1,
                    amplitude: 100,
                }
            },
            seed: u64::from(id),
        }
    }

    #[test]
    fn fifo_dispatches_in_arrival_order_and_never_sheds() {
        let mut q = AdmissionQueue::new(AdmitPolicy::FifoUnbounded);
        q.push(req(1, 20, 25, false));
        q.push(req(0, 10, 1_000, false));
        assert!(q.shed_blown(500).is_empty(), "FIFO never sheds");
        assert_eq!(q.pop_available(|_| true).unwrap().id, 0);
        assert_eq!(q.pop_available(|_| true).unwrap().id, 1);
        assert!(q.pop_available(|_| true).is_none());
    }

    #[test]
    fn edf_dispatches_most_urgent_first_and_sheds_blown_budgets() {
        let mut q = AdmissionQueue::new(AdmitPolicy::EdfShed);
        q.push(req(0, 0, 5_000, false)); // early arrival, lazy deadline
        q.push(req(1, 40, 100, false)); // late arrival, urgent deadline
        q.push(req(2, 10, 50, false)); // already blown at t=60
        let shed = q.shed_blown(60);
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].id, 2);
        // Most urgent surviving deadline first, not earliest arrival.
        assert_eq!(q.pop_available(|_| true).unwrap().id, 1);
        assert_eq!(q.pop_available(|_| true).unwrap().id, 0);
    }

    #[test]
    fn pop_respects_array_kind_availability() {
        let mut q = AdmissionQueue::new(AdmitPolicy::EdfShed);
        q.push(req(0, 0, 100, true)); // ME, most urgent
        q.push(req(1, 0, 200, false)); // DA
        assert_eq!(q.depth(ArrayKind::Me), 1);
        assert_eq!(q.depth(ArrayKind::Da), 1);
        // Only the DA pool is free: the DA request dispatches even though
        // the ME one is more urgent.
        let popped = q.pop_available(|k| k == ArrayKind::Da).unwrap();
        assert_eq!(popped.id, 1);
        // Nothing dispatchable while the ME pool stays busy.
        assert!(q.pop_available(|k| k == ArrayKind::Da).is_none());
        assert_eq!(q.pop_available(|k| k == ArrayKind::Me).unwrap().id, 0);
    }

    #[test]
    fn monitor_shed_orders_like_edf_and_parses_its_names() {
        assert_eq!(AdmitPolicy::MonitorShed.name(), "monitor-shed");
        assert_eq!(
            AdmitPolicy::from_name("monitor"),
            Some(AdmitPolicy::MonitorShed)
        );
        assert_eq!(
            AdmitPolicy::from_name("monitor-shed"),
            Some(AdmitPolicy::MonitorShed)
        );
        let mut q = AdmissionQueue::new(AdmitPolicy::MonitorShed);
        q.push(req(0, 0, 5_000, false));
        q.push(req(1, 40, 100, false));
        q.push(req(2, 10, 50, false));
        let shed = q.shed_blown(60);
        assert_eq!(shed.len(), 1, "blown budgets still shed like EDF");
        assert_eq!(q.pop_available(|_| true).unwrap().id, 1, "EDF order");
    }

    #[test]
    fn monitor_aware_admission_sheds_low_classes_only_while_alerted() {
        use dsra_monitor::{BurnRateConfig, Monitor, MonitorConfig, MonitorHandle};
        use dsra_trace::TraceEvent;

        let cfg = MonitorConfig {
            window_cycles: 100,
            tenant_budgets: vec![(0, 5.0), (1, 5.0)],
            alert: BurnRateConfig {
                fast_windows: 1,
                slow_windows: 1,
                fire_burn: 1.0,
                clear_burn: 0.5,
                hold_windows: 0,
            },
            ..MonitorConfig::default()
        };
        let handle = MonitorHandle::new(Monitor::new(cfg));
        let gate = MonitorAwareAdmission::new(handle.clone());
        let mut background = req(0, 0, 1_000, false);
        background.class = ServiceClass::Background;
        let quality = req(1, 0, 1_000, false); // req() defaults to Quality
        let mut interactive = req(2, 0, 1_000, false);
        interactive.class = ServiceClass::Deadline(16);
        assert!(!gate.shed_early(&background, 50), "no alert yet");
        // One all-shed window latches the tenant-0 alert.
        handle.observe(&TraceEvent::JobShed {
            t: 10,
            job: 9,
            tenant: 0,
            queued: 10,
        });
        assert!(gate.shed_early(&background, 150), "alert latched");
        assert!(
            !gate.shed_early(&quality, 150),
            "one alert sheds only the best-effort tier"
        );
        // Both tenants burning in the same window escalates to the
        // quality tier (systemic overload).
        for (t, tenant) in [(160, 0), (170, 1)] {
            handle.observe(&TraceEvent::JobShed {
                t,
                job: 10 + tenant,
                tenant,
                queued: 10,
            });
        }
        assert!(
            gate.shed_early(&quality, 200),
            "systemic burn sheds the quality tier too"
        );
        assert!(
            !gate.shed_early(&interactive, 200),
            "interactive work is never early-shed"
        );
    }

    #[test]
    fn depth_counters_track_push_pop_and_shed() {
        let mut q = AdmissionQueue::new(AdmitPolicy::EdfShed);
        for id in 0..6 {
            q.push(req(id, 0, 10 + u64::from(id), id % 2 == 0));
        }
        assert_eq!(q.len(), 6);
        assert_eq!(q.depth(ArrayKind::Me), 3);
        assert_eq!(q.depth(ArrayKind::Da), 3);
        let shed = q.shed_blown(12); // deadlines 10, 11, 12 blow
        assert_eq!(shed.len(), 3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.depth(ArrayKind::Me) + q.depth(ArrayKind::Da), 3);
        q.pop_available(|_| true).unwrap();
        assert_eq!(q.len(), 2);
    }
}
