//! The deterministic virtual-time dispatcher: admits arrivals, sheds or
//! dispatches queued requests through the runtime's streaming hooks, and
//! scales the array pool elastically.
//!
//! The loop advances a virtual µs clock from event to event (next
//! arrival, next array becoming free, next gate-eligibility instant) and
//! is a pure function of `(trace, runtime config, service config)` — no
//! wall-clock, no thread timing, so E13 is byte-identical across runs.
//!
//! Elastic pool scaling is *non*-retentive power gating: an array idle
//! longer than [`PoolConfig::gate_idle_us`] with no queued work of its
//! kind is powered off through [`SocRuntime::stream_gate`] (it stops
//! leaking but loses its configuration); backlog at or above
//! [`PoolConfig::wake_backlog`] wakes gated arrays of that kind, whose
//! first job then pays the full configuration rewrite — the wake penalty
//! the scheduler prices exactly like any cold bitstream write.

use dsra_core::error::{CoreError, Result};
use dsra_runtime::{ArrayKind, SocRuntime, StreamArrayStatus};
use dsra_trace::TraceEvent;
use dsra_video::{JobPayload, JobSpec};

use crate::admit::{AdmissionQueue, AdmitPolicy};
use crate::report::{RequestOutcome, ServiceReport, TenantReport};
use crate::trace::{generate_trace, Request, TenantSpec, TraceConfig};

/// Elastic array-pool parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// `false` keeps every array powered for the whole session (the
    /// fixed-pool baseline).
    pub elastic: bool,
    /// Idle µs after which an array with no queued work of its kind is
    /// power-gated.
    pub gate_idle_us: u64,
    /// Queue depth (per array kind) at which gated arrays of that kind
    /// are woken.
    pub wake_backlog: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            elastic: true,
            gate_idle_us: 2_000,
            wake_backlog: 6,
        }
    }
}

/// How one streaming session is run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Admission / shedding policy.
    pub policy: AdmitPolicy,
    /// Elastic pool parameters.
    pub pool: PoolConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            policy: AdmitPolicy::EdfShed,
            pool: PoolConfig::default(),
        }
    }
}

fn payload_tag(payload: &JobPayload) -> &'static str {
    match payload {
        JobPayload::DctBlocks { .. } => "dct",
        JobPayload::MeSearch { .. } => "me",
        JobPayload::EncodeGop { .. } => "encode",
    }
}

/// Generates the trace described by `trace_config` and serves it — the
/// E13 entry point.
///
/// # Errors
/// See [`serve_requests`].
pub fn serve_trace(
    runtime: &mut SocRuntime,
    trace_config: &TraceConfig,
    service: &ServiceConfig,
) -> Result<ServiceReport> {
    let trace = generate_trace(trace_config);
    serve_requests(
        runtime,
        &trace_config.tenants,
        trace_config.duration_us,
        &trace,
        service,
    )
}

/// Serves an explicit request stream (must be arrival-ordered with dense
/// ids, as [`generate_trace`] produces) against the runtime's array pool.
///
/// The runtime is used in streaming mode: a fresh session is opened, every
/// request is dispatched (or shed) at its virtual instant, and the session
/// is closed at `max(makespan, duration_us)` so tail idle energy through
/// the end of the trace window is accounted.
///
/// # Errors
/// Fails on a malformed trace (unsorted / non-dense ids), a payload with
/// no compatible array in the pool, or any compile/execution failure.
pub fn serve_requests(
    runtime: &mut SocRuntime,
    tenants: &[TenantSpec],
    duration_us: u64,
    trace: &[Request],
    service: &ServiceConfig,
) -> Result<ServiceReport> {
    for (i, r) in trace.iter().enumerate() {
        if r.id != i as u32 || (i > 0 && trace[i - 1].arrival_us > r.arrival_us) {
            return Err(CoreError::Mismatch(format!(
                "trace must be arrival-ordered with dense ids (request {i})"
            )));
        }
        let pool = match r.needs() {
            ArrayKind::Da => runtime.config().da_arrays,
            ArrayKind::Me => runtime.config().me_arrays,
        };
        if pool == 0 {
            return Err(CoreError::Mismatch(format!(
                "request {} needs a {} array but the pool has none",
                r.id,
                r.needs().tag()
            )));
        }
    }
    // Virtual µs ↔ sim-cycles: one µs is one clock-MHz worth of cycles
    // (exact at the default 100 MHz; rounded otherwise).
    let cyc = (runtime.config().soc.clock_mhz.round() as u64).max(1);
    let us_of = |cycle: u64| cycle.div_ceil(cyc);

    let mut queue = AdmissionQueue::new(service.policy);
    let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; trace.len()];
    let mut next = 0usize;
    let mut now_us = trace.first().map_or(duration_us, |r| r.arrival_us);
    let mut makespan_us = 0u64;
    runtime.stream_begin();

    loop {
        // 1 — admission: everything that has arrived by `now` enters the
        // queue (open loop: admission never says no; the EDF policy says
        // no at dispatch time by shedding).
        while next < trace.len() && trace[next].arrival_us <= now_us {
            let r = &trace[next];
            // Trace the arrival and its (open-loop, always-yes) admission
            // in virtual cycles, so lifecycle spans line up with the
            // runtime's schedule/exec events.
            if runtime.trace_sink().enabled() {
                let sink = runtime.trace_sink();
                sink.emit(TraceEvent::JobEnqueue {
                    t: r.arrival_us * cyc,
                    job: r.id,
                    tenant: r.tenant.into(),
                    class: r.class.tag(),
                    kind: payload_tag(&r.payload),
                    deadline: r.deadline_us * cyc,
                });
                sink.emit(TraceEvent::JobAdmit {
                    t: now_us * cyc,
                    job: r.id,
                });
            }
            queue.push(trace[next]);
            next += 1;
        }

        // 2 — shedding: queued requests whose budget is already blown.
        for r in queue.shed_blown(now_us) {
            let wait_us = now_us - r.arrival_us;
            if runtime.trace_sink().enabled() {
                runtime.trace_sink().emit(TraceEvent::JobShed {
                    t: now_us * cyc,
                    job: r.id,
                    tenant: r.tenant.into(),
                    queued: wait_us * cyc,
                });
            }
            outcomes[r.id as usize] = Some(RequestOutcome {
                id: r.id,
                tenant: r.tenant,
                kind: payload_tag(&r.payload),
                arrival_us: r.arrival_us,
                deadline_us: r.deadline_us,
                shed: true,
                array: usize::MAX,
                start_us: now_us,
                end_us: now_us,
                latency_us: 0,
                violated: false,
                shed_wait_us: wait_us,
                reconfig_bits: 0,
                checksum: 0,
                energy_j: 0.0,
            });
        }

        // 3 — elastic pool control: gate long-idle arrays with no queued
        // work of their kind; wake gated arrays once backlog crosses the
        // threshold (and always keep at least one array of a kind with
        // queued work awake). One status snapshot per iteration, updated
        // locally as gates/wakes land — the loop runs once per virtual
        // event, and under overload the backlog makes every scan count.
        let mut status: Vec<StreamArrayStatus> = runtime.stream_array_status();
        if service.pool.elastic {
            for a in status.iter_mut() {
                if !a.gated
                    && us_of(a.free_at) + service.pool.gate_idle_us <= now_us
                    && queue.depth(a.kind) == 0
                    && runtime.stream_gate(a.id, now_us * cyc)
                {
                    a.gated = true;
                    a.free_at = now_us * cyc;
                }
            }
            for kind in [ArrayKind::Da, ArrayKind::Me] {
                if queue.depth(kind) >= service.pool.wake_backlog {
                    for a in status.iter_mut() {
                        if a.kind == kind && a.gated && runtime.stream_wake(a.id, now_us * cyc) {
                            a.gated = false;
                            a.free_at = a.free_at.max(now_us * cyc);
                        }
                    }
                }
            }
        }
        for kind in [ArrayKind::Da, ArrayKind::Me] {
            if queue.depth(kind) > 0
                && status.iter().any(|a| a.kind == kind)
                && status.iter().all(|a| a.kind != kind || a.gated)
            {
                let first = status
                    .iter_mut()
                    .find(|a| a.kind == kind)
                    .expect("checked above");
                if runtime.stream_wake(first.id, now_us * cyc) {
                    first.gated = false;
                    first.free_at = first.free_at.max(now_us * cyc);
                }
            }
        }

        // 4 — dispatch: the policy-most-urgent request whose pool has a
        // free, powered array right now.
        let free = |kind: ArrayKind| {
            status
                .iter()
                .any(|a| a.kind == kind && !a.gated && us_of(a.free_at) <= now_us)
        };
        if let Some(r) = queue.pop_available(free) {
            let job = JobSpec {
                id: r.id,
                arrival_cycle: r.arrival_us * cyc,
                class: r.class,
                payload: r.payload,
                seed: r.seed,
            };
            let served = runtime.stream_serve_job(&job)?;
            let end_us = us_of(served.end_cycle);
            makespan_us = makespan_us.max(end_us);
            outcomes[r.id as usize] = Some(RequestOutcome {
                id: r.id,
                tenant: r.tenant,
                kind: payload_tag(&r.payload),
                arrival_us: r.arrival_us,
                deadline_us: r.deadline_us,
                shed: false,
                array: served.array,
                start_us: us_of(served.start_cycle),
                end_us,
                latency_us: end_us - r.arrival_us,
                violated: end_us > r.deadline_us,
                shed_wait_us: 0,
                reconfig_bits: served.reconfig_bits,
                checksum: served.checksum,
                energy_j: served.energy_j,
            });
            continue; // same instant — maybe another pool is free too
        }

        // 5 — advance virtual time to the next event, or finish.
        if queue.is_empty() && next >= trace.len() {
            break;
        }
        let mut next_event: Option<u64> = trace.get(next).map(|r| r.arrival_us);
        let mut consider = |t: u64| {
            if t > now_us {
                next_event = Some(next_event.map_or(t, |e| e.min(t)));
            }
        };
        for a in &status {
            if !a.gated {
                consider(us_of(a.free_at));
                if service.pool.elastic {
                    consider(us_of(a.free_at) + service.pool.gate_idle_us);
                }
            }
        }
        now_us = next_event
            .ok_or_else(|| CoreError::Mismatch("dispatcher stalled with work queued".into()))?;
    }

    // Close the session at the later of the last completion and the trace
    // window, so tail idle leakage (or gating) through the window is paid.
    let end_us = makespan_us.max(duration_us);
    let summary = runtime
        .stream_end(end_us * cyc)
        .expect("session opened above");

    let outcomes: Vec<RequestOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every request is served or shed"))
        .collect();
    let tenants = tenants
        .iter()
        .map(|spec| {
            let mine: Vec<&RequestOutcome> =
                outcomes.iter().filter(|o| o.tenant == spec.id).collect();
            let submitted = mine.len();
            let served = mine.iter().filter(|o| !o.shed).count();
            let shed = submitted - served;
            let violations = mine.iter().filter(|o| o.violated).count();
            TenantReport {
                spec: *spec,
                submitted,
                served,
                shed,
                violations,
                goodput_pct: if submitted == 0 {
                    100.0
                } else {
                    (served - violations) as f64 * 100.0 / submitted as f64
                },
                shed_within_tolerance: shed * 100
                    <= usize::from(spec.slo.shed_tolerance_pct) * submitted,
                max_latency_us: mine.iter().map(|o| o.latency_us).max().unwrap_or(0),
                energy_j: mine.iter().map(|o| o.energy_j).sum(),
            }
        })
        .collect();
    let served = outcomes.iter().filter(|o| !o.shed).count();
    Ok(ServiceReport {
        policy: service.policy.name(),
        duration_us,
        makespan_us,
        requests: outcomes.len(),
        served,
        shed: outcomes.len() - served,
        violations: outcomes.iter().filter(|o| o.violated).count(),
        pool: summary,
        tenants,
        outcomes,
    })
}
