//! The deterministic virtual-time dispatcher: admits arrivals, sheds or
//! dispatches queued requests through the runtime's streaming hooks, and
//! scales the array pool elastically.
//!
//! The loop advances a virtual µs clock from event to event (next
//! arrival, next array becoming free, next gate-eligibility instant) and
//! is a pure function of `(trace, runtime config, service config)` — no
//! wall-clock, no thread timing, so E13 is byte-identical across runs.
//!
//! Elastic pool scaling is *non*-retentive power gating: an array idle
//! longer than [`PoolConfig::gate_idle_us`] with no queued work of its
//! kind is powered off through [`SocRuntime::stream_gate`] (it stops
//! leaking but loses its configuration); backlog at or above
//! [`PoolConfig::wake_backlog`] wakes gated arrays of that kind, whose
//! first job then pays the full configuration rewrite — the wake penalty
//! the scheduler prices exactly like any cold bitstream write.

use dsra_core::error::{CoreError, Result};
use dsra_monitor::{Monitor, MonitorConfig, MonitorHandle, MonitorSink};
use dsra_runtime::{ArrayKind, SocRuntime, StreamArrayStatus, StreamedJob};
use dsra_trace::{TraceEvent, TraceSink};
use dsra_video::{JobPayload, JobSpec};

/// Interposes on the dispatcher's serve step — the extension point the
/// fault-recovery layer (`dsra-chaos`) plugs into. The default
/// ([`NoopDispatch`]) serves every job straight through
/// [`SocRuntime::stream_serve_job`], so the hooked loop is byte-identical
/// to the plain one when no hook logic fires.
pub trait DispatchHook {
    /// Runs once per dispatcher iteration at virtual instant `now_us`,
    /// before admission and dispatch — where a chaos hook activates
    /// scheduled faults and probes quarantined arrays.
    fn on_tick(&mut self, _runtime: &mut SocRuntime, _now_us: u64) {}

    /// The next virtual instant this hook needs the loop to visit (a
    /// scheduled fault, a quarantine probe), if any — folded into the
    /// dispatcher's time advance so hook events are never skipped over.
    fn next_event_us(&mut self, _now_us: u64) -> Option<u64> {
        None
    }

    /// Serves one admitted request, with full freedom to retry through
    /// [`SocRuntime::stream_serve_job_excluding`] or quarantine arrays.
    /// `Ok(None)` marks the request *failed* — detected as corrupt and
    /// not recoverable within the retry budget — which the dispatcher
    /// reports as a [`RequestOutcome`] with `failed` set (neither served
    /// nor shed).
    ///
    /// # Errors
    /// Propagates runtime compile/execution failures.
    fn dispatch(
        &mut self,
        runtime: &mut SocRuntime,
        job: &JobSpec,
        now_us: u64,
    ) -> Result<Option<StreamedJob>>;
}

/// The identity [`DispatchHook`]: serve every job directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopDispatch;

impl DispatchHook for NoopDispatch {
    fn dispatch(
        &mut self,
        runtime: &mut SocRuntime,
        job: &JobSpec,
        _now_us: u64,
    ) -> Result<Option<StreamedJob>> {
        runtime.stream_serve_job(job).map(Some)
    }
}

use crate::admit::{AdmissionQueue, AdmitPolicy, MonitorAwareAdmission};
use crate::report::{RequestOutcome, ServiceReport, TenantReport};
use crate::trace::{generate_trace, Request, TenantSpec, TraceConfig};

/// Elastic array-pool parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// `false` keeps every array powered for the whole session (the
    /// fixed-pool baseline).
    pub elastic: bool,
    /// Idle µs after which an array with no queued work of its kind is
    /// power-gated.
    pub gate_idle_us: u64,
    /// Queue depth (per array kind) at which gated arrays of that kind
    /// are woken.
    pub wake_backlog: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            elastic: true,
            gate_idle_us: 2_000,
            wake_backlog: 6,
        }
    }
}

/// How one streaming session is run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Admission / shedding policy.
    pub policy: AdmitPolicy,
    /// Elastic pool parameters.
    pub pool: PoolConfig,
    /// Shared handle to the online monitor, when one is installed on the
    /// runtime (see [`install_monitor`]). Required by
    /// [`AdmitPolicy::MonitorShed`]; with any other policy it is only
    /// finalized at session end so its alert log is complete.
    pub monitor: Option<MonitorHandle>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            policy: AdmitPolicy::EdfShed,
            pool: PoolConfig::default(),
            monitor: None,
        }
    }
}

/// Builds a [`MonitorConfig`] for a tenant set: each tenant's error
/// budget is its SLO shed tolerance, and the window geometry is scaled
/// from the runtime's µs↔cycle factor (250 µs windows by default). The
/// seal grace is one µs-quantum minus one cycle: the dispatcher's clock
/// rounds cycles *up* to µs, so a job dispatched at instant `now` can
/// complete up to `cycles_per_us − 1` cycles behind the watermark, and
/// the grace keeps such completions inside their window — the monitor
/// drops nothing, and time-ordered replay (`trace_report --slo`)
/// reproduces the online state exactly.
pub fn monitor_config_for(tenants: &[TenantSpec], cycles_per_us: u64) -> MonitorConfig {
    MonitorConfig {
        window_cycles: 250 * cycles_per_us.max(1),
        hist_bucket_cycles: 25 * cycles_per_us.max(1),
        seal_grace_cycles: cycles_per_us.max(1) - 1,
        tenant_budgets: tenants
            .iter()
            .map(|t| (u32::from(t.id), f64::from(t.slo.shed_tolerance_pct)))
            .collect(),
        ..MonitorConfig::default()
    }
}

/// Creates an online monitor for `tenants`, installs it on the runtime
/// as a [`MonitorSink`] tee over `inner` (pass the previous sink, or a
/// boxed [`dsra_trace::NoopSink`] when recording is off), and returns
/// the shared handle. Put a clone of the handle into
/// [`ServiceConfig::monitor`] so the dispatcher can finalize it — and,
/// under [`AdmitPolicy::MonitorShed`], act on its alerts.
pub fn install_monitor(
    runtime: &mut SocRuntime,
    tenants: &[TenantSpec],
    inner: Box<dyn TraceSink>,
) -> MonitorHandle {
    let cyc = (runtime.config().soc.clock_mhz.round() as u64).max(1);
    let cfg = monitor_config_for(tenants, cyc);
    install_monitor_with(runtime, cfg, inner)
}

/// [`install_monitor`] with an explicit [`MonitorConfig`] — for callers
/// that need non-default geometry (e.g. `keep_timeline` for the
/// error-budget timeline the replay pinning test compares).
pub fn install_monitor_with(
    runtime: &mut SocRuntime,
    cfg: MonitorConfig,
    inner: Box<dyn TraceSink>,
) -> MonitorHandle {
    let handle = MonitorHandle::new(Monitor::new(cfg));
    runtime.set_trace_sink(Box::new(MonitorSink::new(handle.clone(), inner)));
    handle
}

fn payload_tag(payload: &JobPayload) -> &'static str {
    match payload {
        JobPayload::DctBlocks { .. } => "dct",
        JobPayload::MeSearch { .. } => "me",
        JobPayload::EncodeGop { .. } => "encode",
    }
}

/// Generates the trace described by `trace_config` and serves it — the
/// E13 entry point.
///
/// # Errors
/// See [`serve_requests`].
pub fn serve_trace(
    runtime: &mut SocRuntime,
    trace_config: &TraceConfig,
    service: &ServiceConfig,
) -> Result<ServiceReport> {
    let trace = generate_trace(trace_config);
    serve_requests(
        runtime,
        &trace_config.tenants,
        trace_config.duration_us,
        &trace,
        service,
    )
}

/// Serves an explicit request stream (must be arrival-ordered with dense
/// ids, as [`generate_trace`] produces) against the runtime's array pool.
///
/// The runtime is used in streaming mode: a fresh session is opened, every
/// request is dispatched (or shed) at its virtual instant, and the session
/// is closed at `max(makespan, duration_us)` so tail idle energy through
/// the end of the trace window is accounted.
///
/// # Errors
/// Fails on a malformed trace (unsorted / non-dense ids), a payload with
/// no compatible array in the pool, or any compile/execution failure.
pub fn serve_requests(
    runtime: &mut SocRuntime,
    tenants: &[TenantSpec],
    duration_us: u64,
    trace: &[Request],
    service: &ServiceConfig,
) -> Result<ServiceReport> {
    serve_requests_with_hook(
        runtime,
        tenants,
        duration_us,
        trace,
        service,
        &mut NoopDispatch,
    )
}

/// [`serve_requests`] with a [`DispatchHook`] interposed on the serve
/// step — the E15 chaos entry point. With [`NoopDispatch`] this is
/// exactly [`serve_requests`].
///
/// # Errors
/// See [`serve_requests`].
pub fn serve_requests_with_hook(
    runtime: &mut SocRuntime,
    tenants: &[TenantSpec],
    duration_us: u64,
    trace: &[Request],
    service: &ServiceConfig,
    hook: &mut dyn DispatchHook,
) -> Result<ServiceReport> {
    for (i, r) in trace.iter().enumerate() {
        if r.id != i as u32 || (i > 0 && trace[i - 1].arrival_us > r.arrival_us) {
            return Err(CoreError::Mismatch(format!(
                "trace must be arrival-ordered with dense ids (request {i})"
            )));
        }
        let pool = match r.needs() {
            ArrayKind::Da => runtime.config().da_arrays,
            ArrayKind::Me => runtime.config().me_arrays,
        };
        if pool == 0 {
            return Err(CoreError::Mismatch(format!(
                "request {} needs a {} array but the pool has none",
                r.id,
                r.needs().tag()
            )));
        }
    }
    // Virtual µs ↔ sim-cycles: one µs is one clock-MHz worth of cycles
    // (exact at the default 100 MHz; rounded otherwise).
    let cyc = (runtime.config().soc.clock_mhz.round() as u64).max(1);
    let us_of = |cycle: u64| cycle.div_ceil(cyc);

    // The health-driven control hook: only the monitor-shed policy acts
    // on alerts, and it cannot work without the monitor that raises them.
    let early = match (service.policy, &service.monitor) {
        (AdmitPolicy::MonitorShed, Some(handle)) => {
            Some(MonitorAwareAdmission::new(handle.clone()))
        }
        (AdmitPolicy::MonitorShed, None) => {
            return Err(CoreError::Mismatch(
                "monitor-shed policy requires ServiceConfig::monitor (see install_monitor)".into(),
            ))
        }
        _ => None,
    };

    let mut queue = AdmissionQueue::new(service.policy);
    let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; trace.len()];
    let mut next = 0usize;
    let mut now_us = trace.first().map_or(duration_us, |r| r.arrival_us);
    let mut makespan_us = 0u64;
    // A monitored session embeds its window geometry and tenant budgets
    // in the trace metadata, so `trace_report --slo` can rebuild exactly
    // the same windows post hoc. Monitor-off traces carry no new keys.
    if let Some(handle) = &service.monitor {
        if runtime.trace_sink().enabled() {
            let mcfg = handle.with(|m| m.config().clone());
            let budgets = mcfg
                .tenant_budgets
                .iter()
                .map(|(t, b)| format!("{t}:{b}"))
                .collect::<Vec<_>>()
                .join(" ");
            let sink = runtime.trace_sink();
            sink.emit(TraceEvent::Meta {
                key: "monitor_window_cycles",
                value: mcfg.window_cycles.to_string(),
            });
            sink.emit(TraceEvent::Meta {
                key: "monitor_hist_bucket_cycles",
                value: mcfg.hist_bucket_cycles.to_string(),
            });
            sink.emit(TraceEvent::Meta {
                key: "monitor_seal_grace_cycles",
                value: mcfg.seal_grace_cycles.to_string(),
            });
            sink.emit(TraceEvent::Meta {
                key: "monitor_tenant_budgets",
                value: budgets,
            });
        }
    }
    runtime.stream_begin();

    loop {
        // 0 — hook tick: scheduled fault injection and quarantine
        // probes land before this instant's admission and dispatch.
        hook.on_tick(runtime, now_us);

        // 1 — admission: everything that has arrived by `now` enters the
        // queue (open loop: admission never says no; the EDF policy says
        // no at dispatch time by shedding). Exception: under monitor-shed
        // a latched burn-rate alert sheds lowest-class arrivals here,
        // before they occupy queue or array capacity.
        while next < trace.len() && trace[next].arrival_us <= now_us {
            let r = trace[next];
            // Trace the arrival and its admission decision in virtual
            // cycles, so lifecycle spans line up with the runtime's
            // schedule/exec events.
            if runtime.trace_sink().enabled() {
                let sink = runtime.trace_sink();
                sink.emit(TraceEvent::JobEnqueue {
                    t: r.arrival_us * cyc,
                    job: r.id,
                    tenant: r.tenant.into(),
                    class: r.class.tag(),
                    kind: payload_tag(&r.payload),
                    deadline: r.deadline_us * cyc,
                });
                sink.emit(TraceEvent::JobAdmit {
                    t: now_us * cyc,
                    job: r.id,
                });
            }
            next += 1;
            if let Some(gate) = &early {
                if gate.shed_early(&r, now_us * cyc) {
                    let wait_us = now_us - r.arrival_us;
                    if runtime.trace_sink().enabled() {
                        runtime.trace_sink().emit(TraceEvent::JobShed {
                            t: now_us * cyc,
                            job: r.id,
                            tenant: r.tenant.into(),
                            queued: wait_us * cyc,
                        });
                    }
                    outcomes[r.id as usize] = Some(RequestOutcome {
                        id: r.id,
                        tenant: r.tenant,
                        kind: payload_tag(&r.payload),
                        arrival_us: r.arrival_us,
                        deadline_us: r.deadline_us,
                        shed: true,
                        failed: false,
                        array: usize::MAX,
                        start_us: now_us,
                        end_us: now_us,
                        latency_us: 0,
                        violated: false,
                        shed_wait_us: wait_us,
                        reconfig_bits: 0,
                        checksum: 0,
                        energy_j: 0.0,
                    });
                    continue;
                }
            }
            queue.push(r);
        }

        // 2 — shedding: queued requests whose budget is already blown.
        for r in queue.shed_blown(now_us) {
            let wait_us = now_us - r.arrival_us;
            if runtime.trace_sink().enabled() {
                runtime.trace_sink().emit(TraceEvent::JobShed {
                    t: now_us * cyc,
                    job: r.id,
                    tenant: r.tenant.into(),
                    queued: wait_us * cyc,
                });
            }
            outcomes[r.id as usize] = Some(RequestOutcome {
                id: r.id,
                tenant: r.tenant,
                kind: payload_tag(&r.payload),
                arrival_us: r.arrival_us,
                deadline_us: r.deadline_us,
                shed: true,
                failed: false,
                array: usize::MAX,
                start_us: now_us,
                end_us: now_us,
                latency_us: 0,
                violated: false,
                shed_wait_us: wait_us,
                reconfig_bits: 0,
                checksum: 0,
                energy_j: 0.0,
            });
        }

        // 3 — elastic pool control: gate long-idle arrays with no queued
        // work of their kind; wake gated arrays once backlog crosses the
        // threshold (and always keep at least one array of a kind with
        // queued work awake). One status snapshot per iteration, updated
        // locally as gates/wakes land — the loop runs once per virtual
        // event, and under overload the backlog makes every scan count.
        let mut status: Vec<StreamArrayStatus> = runtime.stream_array_status();
        if service.pool.elastic {
            for a in status.iter_mut() {
                if !a.gated
                    && !a.quarantined
                    && us_of(a.free_at) + service.pool.gate_idle_us <= now_us
                    && queue.depth(a.kind) == 0
                    && runtime.stream_gate(a.id, now_us * cyc)
                {
                    a.gated = true;
                    a.free_at = now_us * cyc;
                }
            }
            for kind in [ArrayKind::Da, ArrayKind::Me] {
                if queue.depth(kind) >= service.pool.wake_backlog {
                    for a in status.iter_mut() {
                        if a.kind == kind
                            && a.gated
                            && !a.quarantined
                            && runtime.stream_wake(a.id, now_us * cyc)
                        {
                            a.gated = false;
                            a.free_at = a.free_at.max(now_us * cyc);
                        }
                    }
                }
            }
        }
        for kind in [ArrayKind::Da, ArrayKind::Me] {
            if queue.depth(kind) > 0
                && status.iter().any(|a| a.kind == kind && !a.quarantined)
                && status
                    .iter()
                    .all(|a| a.kind != kind || a.quarantined || a.gated)
            {
                let first = status
                    .iter_mut()
                    .find(|a| a.kind == kind && !a.quarantined)
                    .expect("checked above");
                if runtime.stream_wake(first.id, now_us * cyc) {
                    first.gated = false;
                    first.free_at = first.free_at.max(now_us * cyc);
                }
            }
        }

        // 4 — dispatch: the policy-most-urgent request whose pool has a
        // free, powered array right now.
        let free = |kind: ArrayKind| {
            status
                .iter()
                .any(|a| a.kind == kind && !a.gated && !a.quarantined && us_of(a.free_at) <= now_us)
        };
        if let Some(r) = queue.pop_available(free) {
            let job = JobSpec {
                id: r.id,
                arrival_cycle: r.arrival_us * cyc,
                class: r.class,
                payload: r.payload,
                seed: r.seed,
            };
            match hook.dispatch(runtime, &job, now_us)? {
                Some(served) => {
                    let end_us = us_of(served.end_cycle);
                    makespan_us = makespan_us.max(end_us);
                    outcomes[r.id as usize] = Some(RequestOutcome {
                        id: r.id,
                        tenant: r.tenant,
                        kind: payload_tag(&r.payload),
                        arrival_us: r.arrival_us,
                        deadline_us: r.deadline_us,
                        shed: false,
                        failed: false,
                        array: served.array,
                        start_us: us_of(served.start_cycle),
                        end_us,
                        latency_us: end_us - r.arrival_us,
                        violated: end_us > r.deadline_us,
                        shed_wait_us: 0,
                        reconfig_bits: served.reconfig_bits,
                        checksum: served.checksum,
                        energy_j: served.energy_j,
                    });
                }
                // Failed after retries: the hook detected corruption it
                // could not recover from. The request is neither served
                // nor shed — its checksum never reaches a tenant.
                None => {
                    outcomes[r.id as usize] = Some(RequestOutcome {
                        id: r.id,
                        tenant: r.tenant,
                        kind: payload_tag(&r.payload),
                        arrival_us: r.arrival_us,
                        deadline_us: r.deadline_us,
                        shed: false,
                        failed: true,
                        array: usize::MAX,
                        start_us: now_us,
                        end_us: now_us,
                        latency_us: 0,
                        violated: false,
                        shed_wait_us: 0,
                        reconfig_bits: 0,
                        checksum: 0,
                        energy_j: 0.0,
                    });
                }
            }
            continue; // same instant — maybe another pool is free too
        }

        // 5 — advance virtual time to the next event, or finish.
        if queue.is_empty() && next >= trace.len() {
            break;
        }
        let mut next_event: Option<u64> = trace.get(next).map(|r| r.arrival_us);
        let mut consider = |t: u64| {
            if t > now_us {
                next_event = Some(next_event.map_or(t, |e| e.min(t)));
            }
        };
        for a in &status {
            if !a.gated && !a.quarantined {
                consider(us_of(a.free_at));
                if service.pool.elastic {
                    consider(us_of(a.free_at) + service.pool.gate_idle_us);
                }
            }
        }
        if let Some(t) = hook.next_event_us(now_us) {
            consider(t);
        }
        now_us = next_event
            .ok_or_else(|| CoreError::Mismatch("dispatcher stalled with work queued".into()))?;
    }

    // Close the session at the later of the last completion and the trace
    // window, so tail idle leakage (or gating) through the window is paid.
    let end_us = makespan_us.max(duration_us);
    let summary = runtime
        .stream_end(end_us * cyc)
        .expect("session opened above");
    // Close the monitor's stream too: every resident window seals, so the
    // alert log and final snapshot are complete and replay-identical.
    let health = service.monitor.as_ref().map(|handle| {
        handle.finalize(end_us * cyc);
        handle.final_snapshot()
    });

    let outcomes: Vec<RequestOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every request is served, shed, or failed"))
        .collect();
    let tenants = tenants
        .iter()
        .map(|spec| {
            let mine: Vec<&RequestOutcome> =
                outcomes.iter().filter(|o| o.tenant == spec.id).collect();
            let submitted = mine.len();
            let served = mine.iter().filter(|o| !o.shed && !o.failed).count();
            let shed = mine.iter().filter(|o| o.shed).count();
            let violations = mine.iter().filter(|o| o.violated).count();
            TenantReport {
                spec: *spec,
                submitted,
                served,
                shed,
                violations,
                goodput_pct: if submitted == 0 {
                    100.0
                } else {
                    (served - violations) as f64 * 100.0 / submitted as f64
                },
                shed_within_tolerance: shed * 100
                    <= usize::from(spec.slo.shed_tolerance_pct) * submitted,
                max_latency_us: mine.iter().map(|o| o.latency_us).max().unwrap_or(0),
                energy_j: mine.iter().map(|o| o.energy_j).sum(),
            }
        })
        .collect();
    let served = outcomes.iter().filter(|o| !o.shed && !o.failed).count();
    Ok(ServiceReport {
        policy: service.policy.name(),
        duration_us,
        makespan_us,
        requests: outcomes.len(),
        served,
        shed: outcomes.iter().filter(|o| o.shed).count(),
        failed: outcomes.iter().filter(|o| o.failed).count(),
        violations: outcomes.iter().filter(|o| o.violated).count(),
        pool: summary,
        tenants,
        outcomes,
        health,
    })
}
