//! Open-loop trace generation: per-tenant request streams in virtual
//! microseconds.
//!
//! A [`TraceConfig`] describes a set of tenants — each with its own
//! arrival rate, payload mix (drawn through `dsra_video::sample_payload`,
//! the same synthesiser every workload producer in the workspace uses),
//! service-class mix and [`SloSpec`] — and [`generate_trace`] turns it
//! into one merged, arrival-ordered request stream. The trace is *open
//! loop*: arrivals are a pure function of the config, never of how fast
//! the pool serves, which is exactly what makes overload (and the
//! admission-control comparison it motivates) observable.

use dsra_core::rng::SplitMix64;
use dsra_runtime::ArrayKind;
use dsra_video::{sample_gap, sample_payload, JobMixWeights, JobPayload, ServiceClass};

/// A tenant's service-level objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSpec {
    /// Admissible arrival → completion latency in virtual µs; a served
    /// request that takes longer is an SLO violation.
    pub latency_budget_us: u64,
    /// Fraction of requests (percent) the tenant tolerates being shed
    /// before shedding itself counts against the tenant's SLO.
    pub shed_tolerance_pct: u8,
}

/// One tenant of the streaming service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// Dense tenant id.
    pub id: u16,
    /// Archetype tag (`interactive` / `streaming` / `background`).
    pub archetype: &'static str,
    /// Mean inter-arrival gap in virtual µs (bursty around this mean).
    pub mean_gap_us: u64,
    /// Payload-kind weights of the tenant's traffic.
    pub weights: JobMixWeights,
    /// Dominant service class of the tenant's requests.
    pub primary_class: ServiceClass,
    /// Minority service class…
    pub secondary_class: ServiceClass,
    /// …and how often it appears (percent of requests).
    pub secondary_pct: u8,
    /// The tenant's latency/shedding objective.
    pub slo: SloSpec,
}

/// The three tenant archetypes E13 rotates through. `index` picks the
/// archetype; rates are scaled so that `mean_gap_us` is the per-tenant
/// mean inter-arrival gap.
pub fn standard_tenant(id: u16, mean_gap_us: u64) -> TenantSpec {
    match id % 3 {
        // Video-call tenants: transform + motion bound, tight deadline,
        // nearly no tolerance for drops.
        0 => TenantSpec {
            id,
            archetype: "interactive",
            mean_gap_us,
            weights: JobMixWeights {
                dct: 7,
                me: 3,
                encode: 0,
            },
            primary_class: ServiceClass::Deadline(16),
            secondary_class: ServiceClass::Quality,
            secondary_pct: 20,
            slo: SloSpec {
                latency_budget_us: 900,
                shed_tolerance_pct: 2,
            },
        },
        // Streaming playback: quality-first mixed traffic, a looser
        // budget, a few drops are concealable.
        1 => TenantSpec {
            id,
            archetype: "streaming",
            mean_gap_us,
            weights: JobMixWeights {
                dct: 6,
                me: 3,
                encode: 1,
            },
            primary_class: ServiceClass::Quality,
            secondary_class: ServiceClass::Deadline(32),
            secondary_pct: 25,
            slo: SloSpec {
                latency_budget_us: 2_500,
                shed_tolerance_pct: 10,
            },
        },
        // Background transcode: encode-heavy, latency-insensitive, half
        // of it may be shed without anyone noticing.
        _ => TenantSpec {
            id,
            archetype: "background",
            mean_gap_us: mean_gap_us.saturating_mul(2).max(1),
            weights: JobMixWeights {
                dct: 2,
                me: 1,
                encode: 3,
            },
            primary_class: ServiceClass::Background,
            secondary_class: ServiceClass::LowPower,
            secondary_pct: 40,
            slo: SloSpec {
                latency_budget_us: 20_000,
                shed_tolerance_pct: 50,
            },
        },
    }
}

/// The standard tenant set: `n` tenants rotating through the three
/// archetypes, each with the given mean inter-arrival gap (background
/// tenants arrive at half that rate).
pub fn standard_tenants(n: u16, mean_gap_us: u64) -> Vec<TenantSpec> {
    (0..n).map(|id| standard_tenant(id, mean_gap_us)).collect()
}

/// One request of the open-loop stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Dense id in merged arrival order — also the job id the runtime
    /// sees.
    pub id: u32,
    /// Owning tenant.
    pub tenant: u16,
    /// Arrival time in virtual µs.
    pub arrival_us: u64,
    /// Latest admissible completion (`arrival + latency budget`).
    pub deadline_us: u64,
    /// Service class in force for this request.
    pub class: ServiceClass,
    /// The work itself (a `dsra-video` job payload).
    pub payload: JobPayload,
    /// Per-request seed for synthesising payload data.
    pub seed: u64,
}

impl Request {
    /// Which array pool serves this request.
    pub fn needs(&self) -> ArrayKind {
        match self.payload {
            JobPayload::MeSearch { .. } => ArrayKind::Me,
            JobPayload::DctBlocks { .. } | JobPayload::EncodeGop { .. } => ArrayKind::Da,
        }
    }
}

/// Parameters of a generated trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// The tenants whose streams are merged.
    pub tenants: Vec<TenantSpec>,
    /// Virtual length of the trace: arrivals stop at this µs mark.
    pub duration_us: u64,
    /// RNG seed; the whole trace is a pure function of this config.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            tenants: standard_tenants(4, 60),
            duration_us: 50_000,
            seed: 0x57EA_4AED,
        }
    }
}

/// Spreads a tenant id into an independent per-tenant RNG seed — the
/// shared [`dsra_core::rng::split_seed`] recipe, offset by one so tenant
/// 0 does not collapse onto the raw trace seed.
fn tenant_seed(seed: u64, tenant: u16) -> u64 {
    dsra_core::rng::split_seed(seed, u64::from(tenant) + 1)
}

/// Generates the merged, arrival-ordered request stream: every tenant
/// walks its own seeded bursty clock (most requests arrive back to back,
/// some after a lull — the same arrival shape as `generate_job_mix`),
/// then the streams merge by `(arrival_us, tenant)` and requests get
/// dense ids in that order.
pub fn generate_trace(config: &TraceConfig) -> Vec<Request> {
    let mut merged: Vec<Request> = Vec::new();
    for tenant in &config.tenants {
        let mut rng = SplitMix64::new(tenant_seed(config.seed, tenant.id));
        let mean = tenant.mean_gap_us.max(1);
        let mut clock = 0u64;
        loop {
            clock += sample_gap(&mut rng, mean);
            if clock >= config.duration_us {
                break;
            }
            let class = if rng.next_below(100) < u64::from(tenant.secondary_pct) {
                tenant.secondary_class
            } else {
                tenant.primary_class
            };
            let payload = sample_payload(&mut rng, tenant.weights);
            merged.push(Request {
                id: 0, // assigned after the merge
                tenant: tenant.id,
                arrival_us: clock,
                deadline_us: clock + tenant.slo.latency_budget_us,
                class,
                payload,
                seed: rng.next_u64(),
            });
        }
    }
    // Stable sort: simultaneous arrivals order by tenant, and a tenant's
    // own requests keep their generation order.
    merged.sort_by_key(|r| (r.arrival_us, r.tenant));
    for (id, r) in merged.iter_mut().enumerate() {
        r.id = id as u32;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_a_pure_function_of_its_config() {
        let config = TraceConfig::default();
        let a = generate_trace(&config);
        let b = generate_trace(&config);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = generate_trace(&TraceConfig {
            seed: 1,
            ..config.clone()
        });
        assert_ne!(a, c, "a different seed is a different trace");
    }

    #[test]
    fn trace_is_arrival_ordered_with_dense_ids_and_live_deadlines() {
        let trace = generate_trace(&TraceConfig::default());
        for (i, r) in trace.iter().enumerate() {
            assert_eq!(r.id, i as u32);
            assert!(r.deadline_us > r.arrival_us);
            assert!(r.arrival_us < 50_000);
        }
        assert!(trace.windows(2).all(|w| w[0].arrival_us <= w[1].arrival_us));
    }

    #[test]
    fn every_archetype_contributes_its_traffic() {
        let trace = generate_trace(&TraceConfig::default());
        // 4 tenants rotate interactive/streaming/background/interactive.
        for tenant in 0..4u16 {
            assert!(
                trace.iter().filter(|r| r.tenant == tenant).count() > 0,
                "tenant {tenant} generated nothing"
            );
        }
        assert!(trace.iter().any(|r| r.needs() == ArrayKind::Me));
        assert!(trace.iter().any(|r| r.needs() == ArrayKind::Da));
        // The class mix is in force: both primary and secondary classes
        // of tenant 0 (interactive) appear.
        let t0: Vec<_> = trace.iter().filter(|r| r.tenant == 0).collect();
        assert!(t0.iter().any(|r| r.class == ServiceClass::Deadline(16)));
        assert!(t0.iter().any(|r| r.class == ServiceClass::Quality));
    }
}
