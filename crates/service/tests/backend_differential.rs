//! Backend contract at the service layer (ISSUE 6): the same streamed
//! trace served by the open-loop frontend must produce *byte-identical*
//! sessions whichever execution backend the runtime's arrays run —
//! checksums, latencies, shed decisions, energy, and therefore the
//! session digest. The check backend additionally diffs every request
//! in-flight and must complete the whole trace without a divergence.

use dsra_runtime::{BackendKind, DctMapping, RuntimeConfig, SocRuntime};
use dsra_service::{serve_trace, standard_tenants, ServiceConfig, ServiceReport, TraceConfig};

fn session(backend: BackendKind) -> ServiceReport {
    let mut runtime = SocRuntime::new(RuntimeConfig {
        da_arrays: 1,
        me_arrays: 1,
        mappings: vec![
            DctMapping::BasicDa,
            DctMapping::MixedRom,
            DctMapping::SccFull,
        ],
        backend,
        ..Default::default()
    })
    .expect("runtime builds");
    serve_trace(
        &mut runtime,
        &TraceConfig {
            tenants: standard_tenants(3, 40),
            duration_us: 5_000,
            ..Default::default()
        },
        &ServiceConfig::default(),
    )
    .expect("session")
}

#[test]
fn sessions_are_byte_identical_across_backends() {
    let array = session(BackendKind::Array);
    let golden = session(BackendKind::Golden);
    assert!(array.outcomes.iter().any(|o| !o.shed), "trace served work");
    assert_eq!(
        array.outcomes, golden.outcomes,
        "per-request outcomes must not depend on the execution backend"
    );
    assert_eq!(array.digest(), golden.digest());
}

#[test]
fn check_backend_serves_the_whole_trace_without_divergence() {
    let array = session(BackendKind::Array);
    // Check mode runs every request through both engines; any divergence
    // is a hard serve error, so completing the session *is* the assertion.
    let check = session(BackendKind::Check);
    assert_eq!(array.outcomes, check.outcomes);
    assert_eq!(array.digest(), check.digest());
}
