//! Figs. 10–11 — the low-power 2-D systolic full-search array.
//!
//! Four PE modules of `N` PEs each (4×16 = 64 for 16-pixel blocks). Each
//! module computes the SAD of one candidate of a vertically adjacent batch:
//!
//! * **search-area pixels are broadcast** to all modules — one reference row
//!   is fetched per cycle and every module taps it;
//! * **current-block pixels propagate through a register array** — module
//!   `m` sees the current row `m` cycles after module 0 (the register-
//!   multiplexer delay line of Fig. 11), which is exactly what lets four
//!   candidates at `dy, dy+1, dy+2, dy+3` share one stream of reference
//!   rows and cuts the memory bandwidth;
//! * each PE computes `|cur − ref|` (AD cluster) into a combinational adder
//!   chain (ADD/ACC clusters); a per-module accumulator sums the row SADs,
//!   so **the first SAD is ready after `N` (=16) clock cycles** (§4);
//! * a register-multiplexer tree drains the four SADs through the min
//!   comparator (COMP cluster), which tracks the best motion vector.

#![allow(clippy::needless_range_loop)] // cycle-indexed driver loops read clearer

use dsra_core::cluster::{AbsDiffMode, AddOp, ClusterCfg, CompMode};
use dsra_core::error::Result;
use dsra_core::netlist::{Netlist, NodeId};
use dsra_sim::{ExecPlan, InputPort, OutputPort, Simulator};

use crate::harness::{pack_mv, unpack_mv, MeEngine, MeSearchResult};
use crate::reference::{candidate_valid, Match, Plane, SearchParams};

/// Number of PE modules (vertically adjacent candidates per batch).
pub const MODULES: usize = 4;

/// SAD datapath width (16 bits holds a 16×16 block of 8-bit differences).
const SAD_WIDTH: u8 = 16;

/// How a module combines its per-column absolute differences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccumStructure {
    /// Ripple chain through the PEs (the classic systolic organisation:
    /// simple wiring, logic depth grows linearly with `n`).
    Chain,
    /// Balanced adder tree (extra wiring, logarithmic logic depth — the
    /// timing-oriented alternative; DESIGN.md ablation #5).
    Tree,
}

/// Resolved pin handles for the 2-D systolic driver — one name lookup per
/// pin at construction instead of a formatted lookup per pixel per cycle.
#[derive(Debug)]
struct S2dPins {
    cur: Vec<InputPort>,
    refs: Vec<InputPort>,
    men: [InputPort; MODULES],
    mclr: InputPort,
    sel0: InputPort,
    sel1: InputPort,
    cmp_en: InputPort,
    cmp_clr: InputPort,
    cmp_idx: InputPort,
    best_sad: OutputPort,
    best_idx: OutputPort,
}

/// The 2-D systolic array engine.
#[derive(Debug)]
pub struct Systolic2d {
    netlist: Netlist,
    n: usize,
    plan: ExecPlan,
    pins: S2dPins,
}

impl Systolic2d {
    /// Builds the array for `n`-pixel block edges (16 in the paper; 8 and
    /// 32 are the other sizes §4 mentions) with the default chain
    /// accumulation.
    ///
    /// # Errors
    /// Internal netlist inconsistencies only.
    pub fn new(n: usize) -> Result<Self> {
        Self::with_structure(n, AccumStructure::Chain)
    }

    /// Builds the array with an explicit accumulation structure.
    ///
    /// # Errors
    /// Internal netlist inconsistencies only.
    pub fn with_structure(n: usize, structure: AccumStructure) -> Result<Self> {
        assert!(
            (4..=32).contains(&n),
            "block edge {n} outside supported 4..=32"
        );
        let mut nl = Netlist::new(format!("systolic2d-{n}x{n}"));
        // Pixel inputs.
        let cur: Vec<NodeId> = (0..n)
            .map(|j| nl.input(format!("cur{j}"), 8))
            .collect::<Result<_>>()?;
        let refs: Vec<NodeId> = (0..n)
            .map(|j| nl.input(format!("ref{j}"), 8))
            .collect::<Result<_>>()?;
        // Controls.
        let men: Vec<NodeId> = (0..MODULES)
            .map(|m| nl.input(format!("men{m}"), 1))
            .collect::<Result<_>>()?;
        let mclr = nl.input("mclr", 1)?;
        let sel0 = nl.input("sel0", 1)?;
        let sel1 = nl.input("sel1", 1)?;
        let cmp_en = nl.input("cmp_en", 1)?;
        let cmp_clr = nl.input("cmp_clr", 1)?;
        let cmp_idx = nl.input("cmp_idx", 16)?;
        let zero8 = nl.constant("zero8", 0, 8)?;

        let mut module_accs = Vec::with_capacity(MODULES);
        // Per-column current-pixel sources for the module being built;
        // starts at the inputs and grows a register stage per module.
        let mut cur_src: Vec<(NodeId, &str)> = cur.iter().map(|&c| (c, "out")).collect();
        for m in 0..MODULES {
            if m > 0 {
                // Register stage: the Fig. 11 "register array" that
                // propagates current pixels between modules.
                let mut next = Vec::with_capacity(n);
                for (j, src) in cur_src.iter().enumerate() {
                    let reg = nl.cluster(
                        format!("dly_m{m}_c{j}"),
                        ClusterCfg::RegMux {
                            width: 8,
                            registered: true,
                        },
                    )?;
                    nl.connect(*src, (reg, "a"))?;
                    next.push((reg, "y"));
                }
                cur_src = next;
            }
            // PEs: one AD per column, widened to the SAD width.
            let mut wides: Vec<NodeId> = Vec::with_capacity(n);
            for j in 0..n {
                let ad = nl.cluster(
                    format!("ad_m{m}_c{j}"),
                    ClusterCfg::AbsDiff {
                        width: 8,
                        mode: AbsDiffMode::AbsDiff,
                    },
                )?;
                nl.connect(cur_src[j], (ad, "a"))?;
                nl.connect((refs[j], "out"), (ad, "b"))?;
                // Widen the 8-bit difference to the SAD width (zero-extend).
                let wide = nl.concat(format!("w_m{m}_c{j}"), &[(ad, "y"), (zero8, "out")])?;
                wides.push(wide);
            }
            // Row-SAD reduction: chain or balanced tree of ADD/ACC clusters.
            let row_sum = match structure {
                AccumStructure::Chain => {
                    let mut chain_prev: Option<NodeId> = None;
                    for (j, wide) in wides.iter().enumerate() {
                        let add = nl.cluster(
                            format!("chain_m{m}_c{j}"),
                            ClusterCfg::AddAcc {
                                width: SAD_WIDTH,
                                op: AddOp::Add,
                                accumulate: false,
                            },
                        )?;
                        nl.connect((*wide, "out"), (add, "a"))?;
                        if let Some(prev) = chain_prev {
                            nl.connect((prev, "y"), (add, "b"))?;
                        }
                        chain_prev = Some(add);
                    }
                    chain_prev.expect("n >= 4")
                }
                AccumStructure::Tree => {
                    let mut level: Vec<(NodeId, &str)> =
                        wides.iter().map(|&w| (w, "out")).collect();
                    let mut lvl = 0usize;
                    while level.len() > 1 {
                        let mut next = Vec::with_capacity(level.len().div_ceil(2));
                        for (k, pair) in level.chunks(2).enumerate() {
                            if pair.len() == 1 {
                                next.push(pair[0]);
                                continue;
                            }
                            let add = nl.cluster(
                                format!("tree_m{m}_l{lvl}_{k}"),
                                ClusterCfg::AddAcc {
                                    width: SAD_WIDTH,
                                    op: AddOp::Add,
                                    accumulate: false,
                                },
                            )?;
                            nl.connect(pair[0], (add, "a"))?;
                            nl.connect(pair[1], (add, "b"))?;
                            next.push((add, "y"));
                        }
                        level = next;
                        lvl += 1;
                    }
                    level[0].0
                }
            };
            // Module accumulator: sums one row-SAD per cycle.
            let acc = nl.cluster(
                format!("acc_m{m}"),
                ClusterCfg::AddAcc {
                    width: SAD_WIDTH,
                    op: AddOp::Add,
                    accumulate: true,
                },
            )?;
            nl.connect((row_sum, "y"), (acc, "a"))?;
            nl.connect((men[m], "out"), (acc, "en"))?;
            nl.connect((mclr, "out"), (acc, "clr"))?;
            let sad_out = nl.output(format!("sad{m}"), SAD_WIDTH)?;
            nl.connect((acc, "y"), (sad_out, "in"))?;
            module_accs.push(acc);
        }

        // Drain multiplexer tree (register-multiplexer clusters).
        let mux01 = nl.cluster(
            "mux01",
            ClusterCfg::RegMux {
                width: SAD_WIDTH,
                registered: false,
            },
        )?;
        nl.connect((module_accs[0], "y"), (mux01, "a"))?;
        nl.connect((module_accs[1], "y"), (mux01, "b"))?;
        nl.connect((sel0, "out"), (mux01, "sel"))?;
        let mux23 = nl.cluster(
            "mux23",
            ClusterCfg::RegMux {
                width: SAD_WIDTH,
                registered: false,
            },
        )?;
        nl.connect((module_accs[2], "y"), (mux23, "a"))?;
        nl.connect((module_accs[3], "y"), (mux23, "b"))?;
        nl.connect((sel0, "out"), (mux23, "sel"))?;
        let muxtop = nl.cluster(
            "muxtop",
            ClusterCfg::RegMux {
                width: SAD_WIDTH,
                registered: false,
            },
        )?;
        nl.connect((mux01, "y"), (muxtop, "a"))?;
        nl.connect((mux23, "y"), (muxtop, "b"))?;
        nl.connect((sel1, "out"), (muxtop, "sel"))?;

        // Minimum comparator with motion-vector index tracking.
        let comp = nl.cluster(
            "comp",
            ClusterCfg::Comparator {
                width: SAD_WIDTH,
                index_width: 16,
                mode: CompMode::StreamMin,
            },
        )?;
        nl.connect((muxtop, "y"), (comp, "x"))?;
        nl.connect((cmp_idx, "out"), (comp, "idx"))?;
        nl.connect((cmp_en, "out"), (comp, "en"))?;
        nl.connect((cmp_clr, "out"), (comp, "clr"))?;
        let best = nl.output("best_sad", SAD_WIDTH)?;
        nl.connect((comp, "best"), (best, "in"))?;
        let best_idx = nl.output("best_idx", 16)?;
        nl.connect((comp, "best_idx"), (best_idx, "in"))?;

        let plan = ExecPlan::compile(&nl)?;
        let pins = S2dPins {
            cur: (0..n)
                .map(|j| InputPort::resolve(&nl, &format!("cur{j}")))
                .collect::<Result<_>>()?,
            refs: (0..n)
                .map(|j| InputPort::resolve(&nl, &format!("ref{j}")))
                .collect::<Result<_>>()?,
            men: std::array::from_fn(|m| {
                InputPort::resolve(&nl, &format!("men{m}")).expect("men pin exists")
            }),
            mclr: InputPort::resolve(&nl, "mclr")?,
            sel0: InputPort::resolve(&nl, "sel0")?,
            sel1: InputPort::resolve(&nl, "sel1")?,
            cmp_en: InputPort::resolve(&nl, "cmp_en")?,
            cmp_clr: InputPort::resolve(&nl, "cmp_clr")?,
            cmp_idx: InputPort::resolve(&nl, "cmp_idx")?,
            best_sad: OutputPort::resolve(&nl, "best_sad")?,
            best_idx: OutputPort::resolve(&nl, "best_idx")?,
        };
        Ok(Systolic2d {
            netlist: nl,
            n,
            plan,
            pins,
        })
    }

    /// Block edge this array was built for.
    pub fn block_size(&self) -> usize {
        self.n
    }

    /// Cycles until the first SAD of a batch is available (§4: "The first
    /// round of SAD calculations would take 16 clock cycles").
    pub fn first_sad_latency(&self) -> u64 {
        self.n as u64
    }
}

impl MeEngine for Systolic2d {
    fn name(&self) -> &'static str {
        "2-D systolic (4xN)"
    }

    fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    fn search(
        &self,
        cur: &Plane,
        reference: &Plane,
        bx: usize,
        by: usize,
        params: &SearchParams,
    ) -> Result<MeSearchResult> {
        assert_eq!(
            params.block, self.n,
            "array built for {}-pixel blocks",
            self.n
        );
        let n = self.n;
        let p = params.range;
        let pins = &self.pins;
        let mut sim = Simulator::with_plan(&self.netlist, &self.plan);
        let mut ref_fetches = 0u64;
        let mut ref_fetches_naive = 0u64;
        let mut cur_fetches = 0u64;
        let mut candidates = 0u64;

        // Reset the comparator.
        sim.drive(pins.cmp_clr, 1);
        sim.step();
        sim.drive(pins.cmp_clr, 0);

        for dx in -p..=p {
            let mut dy_base = -p;
            while dy_base <= p {
                let batch: Vec<(usize, i32)> = (0..MODULES)
                    .map(|m| (m, dy_base + m as i32))
                    .filter(|&(_, dy)| dy <= p && candidate_valid(reference, bx, by, dx, dy, n))
                    .collect();
                dy_base += MODULES as i32;
                if batch.is_empty() {
                    continue;
                }
                candidates += batch.len() as u64;
                ref_fetches_naive += (batch.len() * n * n) as u64;

                // Clear the module accumulators.
                sim.drive(pins.mclr, 1);
                for m in 0..MODULES {
                    sim.drive(pins.men[m], 0);
                }
                sim.step();
                sim.drive(pins.mclr, 0);

                // Stream n + MODULES - 1 rows (stagger tail).
                let dy0 = i64::from(batch[0].1) - batch[0].0 as i64; // dy of module 0 slot
                for t in 0..(n + MODULES - 1) {
                    // Current row t enters column j (module 0 timing).
                    for j in 0..n {
                        let v = if t < n {
                            u64::from(cur.at(bx + j, by + t))
                        } else {
                            0
                        };
                        sim.drive(pins.cur[j], v);
                    }
                    if t < n {
                        cur_fetches += n as u64;
                    }
                    // Broadcast reference row dy0 + t (if any module needs it).
                    let ry = by as i64 + dy0 + t as i64;
                    let row_needed = batch.iter().any(|&(m, _)| t >= m && t < m + n);
                    if row_needed && ry >= 0 && (ry as usize) < reference.height() {
                        for j in 0..n {
                            let x = (bx as i64 + i64::from(dx)) as usize + j;
                            sim.drive(pins.refs[j], u64::from(reference.at(x, ry as usize)));
                        }
                        ref_fetches += n as u64;
                    } else {
                        for j in 0..n {
                            sim.drive(pins.refs[j], 0);
                        }
                    }
                    // Module m accumulates during its n-cycle window.
                    for m in 0..MODULES {
                        let active = batch.iter().any(|&(bm, _)| bm == m && t >= m && t < m + n);
                        sim.drive(pins.men[m], u64::from(active));
                    }
                    sim.step();
                }
                for m in 0..MODULES {
                    sim.drive(pins.men[m], 0);
                }
                // Drain: compare each module SAD against the running best.
                for &(m, dy) in &batch {
                    sim.drive(pins.sel0, (m & 1) as u64);
                    sim.drive(pins.sel1, ((m >> 1) & 1) as u64);
                    sim.drive(pins.cmp_en, 1);
                    sim.drive(pins.cmp_idx, pack_mv(dx, dy, p));
                    sim.step();
                }
                sim.drive(pins.cmp_en, 0);
            }
        }
        // Let the registered comparator outputs settle.
        sim.step();
        let best_sad = sim.read(pins.best_sad);
        let best_idx = sim.read(pins.best_idx);
        Ok(MeSearchResult {
            best: Match {
                mv: unpack_mv(best_idx, p),
                sad: best_sad,
                candidates,
            },
            cycles: sim.cycle(),
            ref_fetches,
            ref_fetches_naive,
            cur_fetches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::full_search;

    fn shifted_planes(w: usize, h: usize, shift: (i32, i32)) -> (Plane, Plane) {
        let pat = |x: i64, y: i64| -> u8 {
            // Non-linear hash so no two displacements alias.
            let h = (x.wrapping_mul(0x9E37_79B9) ^ y.wrapping_mul(0x85EB_CA6B)) as u64;
            ((h ^ (h >> 13)) & 0xFF) as u8
        };
        let mut refd = Vec::with_capacity(w * h);
        let mut curd = Vec::with_capacity(w * h);
        for y in 0..h as i64 {
            for x in 0..w as i64 {
                refd.push(pat(x, y));
                curd.push(pat(x + i64::from(shift.0), y + i64::from(shift.1)));
            }
        }
        (Plane::new(w, h, curd), Plane::new(w, h, refd))
    }

    #[test]
    fn resource_report_matches_fig11_structure() {
        let eng = Systolic2d::new(16).unwrap();
        let r = eng.report();
        use dsra_core::cluster::ClusterKind;
        // 4 modules x 16 PEs: one AD each.
        assert_eq!(r.me_clusters(ClusterKind::AbsDiff), 64);
        // Chain adders (64) + module accumulators (4).
        assert_eq!(r.me_clusters(ClusterKind::AddAcc), 68);
        // Register delay lines (3 stages x 16 columns) + drain mux tree (3).
        assert_eq!(r.me_clusters(ClusterKind::RegMux), 51);
        assert_eq!(r.me_clusters(ClusterKind::Comparator), 1);
    }

    #[test]
    fn finds_known_shift_and_matches_reference_exactly() {
        let (cur, refp) = shifted_planes(48, 48, (2, -3));
        let params = SearchParams { block: 8, range: 4 };
        let eng = Systolic2d::new(8).unwrap();
        let hw = eng.search(&cur, &refp, 16, 16, &params).unwrap();
        let sw = full_search(&cur, &refp, 16, 16, &params);
        assert_eq!(hw.best.mv, sw.mv);
        assert_eq!(hw.best.sad, sw.sad);
        assert_eq!(hw.best.mv, (2, -3));
        assert_eq!(hw.best.sad, 0);
    }

    #[test]
    fn noisy_planes_still_match_software() {
        let (mut cur, refp) = shifted_planes(48, 48, (-1, 2));
        // Perturb so SAD is nonzero and ties are possible.
        for y in 0..48 {
            for x in 0..48 {
                if (x + y) % 7 == 0 {
                    let v = cur.at(x, y);
                    *cur.at_mut(x, y) = v.wrapping_add(3);
                }
            }
        }
        let params = SearchParams { block: 8, range: 4 };
        let eng = Systolic2d::new(8).unwrap();
        let hw = eng.search(&cur, &refp, 16, 16, &params).unwrap();
        let sw = full_search(&cur, &refp, 16, 16, &params);
        assert_eq!(hw.best.mv, sw.mv);
        assert_eq!(hw.best.sad, sw.sad);
    }

    #[test]
    fn bandwidth_reuse_beats_naive_fetching() {
        let (cur, refp) = shifted_planes(64, 64, (0, 0));
        let params = SearchParams { block: 8, range: 4 };
        let eng = Systolic2d::new(8).unwrap();
        let hw = eng.search(&cur, &refp, 24, 24, &params).unwrap();
        assert!(
            hw.bandwidth_reduction() > 2.0,
            "broadcast+delay reuse should cut fetches substantially, got {}",
            hw.bandwidth_reduction()
        );
    }

    #[test]
    fn first_sad_latency_is_block_height() {
        let eng = Systolic2d::new(16).unwrap();
        assert_eq!(eng.first_sad_latency(), 16);
    }

    #[test]
    fn adder_tree_cuts_logic_depth_without_changing_results() {
        // DESIGN.md ablation #5: chain vs balanced tree reduction.
        let chain = Systolic2d::with_structure(8, AccumStructure::Chain).unwrap();
        let tree = Systolic2d::with_structure(8, AccumStructure::Tree).unwrap();
        let dc = chain.netlist().logic_depth().unwrap();
        let dt = tree.netlist().logic_depth().unwrap();
        assert!(dt < dc, "tree depth {dt} should beat chain depth {dc}");
        let (cur, refp) = shifted_planes(48, 48, (2, -3));
        let params = SearchParams { block: 8, range: 3 };
        let rc = chain.search(&cur, &refp, 16, 16, &params).unwrap();
        let rt = tree.search(&cur, &refp, 16, 16, &params).unwrap();
        assert_eq!(rc.best, rt.best);
        assert_eq!(rc.cycles, rt.cycles);
        // The tree saves one adder per module (n-1 vs n).
        use dsra_core::cluster::ClusterKind;
        assert_eq!(
            chain.report().me_clusters(ClusterKind::AddAcc),
            tree.report().me_clusters(ClusterKind::AddAcc) + 4
        );
    }
}
