//! Reference (software) block-matching: planes, SAD, exhaustive full search.
//!
//! §4: "Motion estimation is based largely on a search scheme, which tries
//! to find the best matching position of a 16x16 macro-block of the current
//! frame with all the candidate blocks within a predetermined or adaptive
//! search range in the previous frame. [...] The matching criterion usually
//! used is the Sum of Absolute Differences (SAD)."

/// A luminance plane (8-bit samples, row-major).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plane {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Plane {
    /// Creates a plane from raw samples.
    ///
    /// # Panics
    /// Panics if `data.len() != width * height`.
    pub fn new(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), width * height, "plane geometry mismatch");
        Plane {
            width,
            height,
            data,
        }
    }

    /// A constant-valued plane.
    pub fn filled(width: usize, height: usize, value: u8) -> Self {
        Plane::new(width, height, vec![value; width * height])
    }

    /// Plane width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Sample at `(x, y)`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    #[inline]
    pub fn at(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x]
    }

    /// Mutable sample access.
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn at_mut(&mut self, x: usize, y: usize) -> &mut u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        &mut self.data[y * self.width + x]
    }

    /// Raw samples, row-major.
    pub fn data(&self) -> &[u8] {
        &self.data
    }
}

/// Search configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchParams {
    /// Block edge in pixels (the paper: "could be 8, 16 or 32").
    pub block: usize,
    /// Search range `p`: displacements in `[-p, +p]` on both axes.
    pub range: i32,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            block: 16,
            range: 8,
        }
    }
}

/// Result of one block search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Motion vector `(dx, dy)` of the best candidate.
    pub mv: (i32, i32),
    /// Its SAD.
    pub sad: u64,
    /// Candidates evaluated.
    pub candidates: u64,
}

/// SAD between the block at `(bx, by)` in `cur` and the block at
/// `(bx+dx, by+dy)` in `reference` — `SAD_N(dx, dy)` of §4.
///
/// # Panics
/// Panics if either window exceeds its plane.
pub fn sad(
    cur: &Plane,
    reference: &Plane,
    bx: usize,
    by: usize,
    dx: i32,
    dy: i32,
    block: usize,
) -> u64 {
    let rx = (bx as i64 + i64::from(dx)) as usize;
    let ry = (by as i64 + i64::from(dy)) as usize;
    let mut total = 0u64;
    for y in 0..block {
        for x in 0..block {
            let a = i64::from(cur.at(bx + x, by + y));
            let b = i64::from(reference.at(rx + x, ry + y));
            total += a.abs_diff(b);
        }
    }
    total
}

/// `true` when candidate `(dx, dy)` keeps the whole window inside the
/// reference plane.
pub fn candidate_valid(
    reference: &Plane,
    bx: usize,
    by: usize,
    dx: i32,
    dy: i32,
    block: usize,
) -> bool {
    let rx = bx as i64 + i64::from(dx);
    let ry = by as i64 + i64::from(dy);
    rx >= 0
        && ry >= 0
        && rx + block as i64 <= reference.width() as i64
        && ry + block as i64 <= reference.height() as i64
}

/// Exhaustive full-search block matching (FSBMA). Scan order is column-major
/// `(dx outer, dy inner)` — the order the systolic array walks candidates —
/// and ties keep the first match (strictly-smaller comparison), so hardware
/// and software agree bit-for-bit on the motion vector.
pub fn full_search(
    cur: &Plane,
    reference: &Plane,
    bx: usize,
    by: usize,
    params: &SearchParams,
) -> Match {
    let mut best: Option<Match> = None;
    let mut candidates = 0u64;
    for dx in -params.range..=params.range {
        for dy in -params.range..=params.range {
            if !candidate_valid(reference, bx, by, dx, dy, params.block) {
                continue;
            }
            candidates += 1;
            let s = sad(cur, reference, bx, by, dx, dy, params.block);
            if best.is_none_or(|b| s < b.sad) {
                best = Some(Match {
                    mv: (dx, dy),
                    sad: s,
                    candidates: 0,
                });
            }
        }
    }
    let mut m = best.expect("search window contains at least (0,0)");
    m.candidates = candidates;
    m
}

/// Three-step search (a classic fast BMA): evaluates a shrinking 3×3
/// pattern. Returns the match and the candidate positions probed, in order
/// (the hardware schedules reuse this list).
pub fn three_step_candidates(range: i32) -> Vec<Vec<(i32, i32)>> {
    let mut steps = Vec::new();
    let mut s = (range / 2).max(1);
    while s >= 1 {
        steps.push(s);
        if s == 1 {
            break;
        }
        s /= 2;
    }
    steps
        .into_iter()
        .map(|s| {
            let mut ring = Vec::new();
            for dy in [-s, 0, s] {
                for dx in [-s, 0, s] {
                    ring.push((dx, dy));
                }
            }
            ring
        })
        .collect()
}

/// Software three-step search (used to validate the hardware schedule).
pub fn three_step_search(
    cur: &Plane,
    reference: &Plane,
    bx: usize,
    by: usize,
    params: &SearchParams,
) -> Match {
    let mut center = (0i32, 0i32);
    let mut best_sad = sad(cur, reference, bx, by, 0, 0, params.block);
    let mut candidates = 1u64;
    for ring in three_step_candidates(params.range) {
        let mut best_here = center;
        for (ox, oy) in ring {
            let (dx, dy) = (center.0 + ox, center.1 + oy);
            if (dx, dy) == center {
                continue;
            }
            if dx.abs() > params.range
                || dy.abs() > params.range
                || !candidate_valid(reference, bx, by, dx, dy, params.block)
            {
                continue;
            }
            candidates += 1;
            let s = sad(cur, reference, bx, by, dx, dy, params.block);
            if s < best_sad {
                best_sad = s;
                best_here = (dx, dy);
            }
        }
        center = best_here;
    }
    Match {
        mv: center,
        sad: best_sad,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shifted_planes(shift: (i32, i32)) -> (Plane, Plane) {
        // reference = pattern; cur = pattern shifted by `shift`.
        let w = 64;
        let h = 48;
        let pat = |x: i64, y: i64| -> u8 {
            // Non-linear hash so no two displacements alias.
            let h = (x.wrapping_mul(0x9E37_79B9) ^ y.wrapping_mul(0x85EB_CA6B)) as u64;
            ((h ^ (h >> 13)) & 0xFF) as u8
        };
        let mut refd = Vec::with_capacity(w * h);
        let mut curd = Vec::with_capacity(w * h);
        for y in 0..h as i64 {
            for x in 0..w as i64 {
                refd.push(pat(x, y));
                curd.push(pat(x + i64::from(shift.0), y + i64::from(shift.1)));
            }
        }
        (Plane::new(w, h, curd), Plane::new(w, h, refd))
    }

    #[test]
    fn full_search_finds_known_shift() {
        for shift in [(0, 0), (3, -2), (-5, 4), (8, 8)] {
            let (cur, reference) = shifted_planes(shift);
            let m = full_search(&cur, &reference, 24, 16, &SearchParams::default());
            assert_eq!(m.mv, shift, "shift {shift:?}");
            assert_eq!(m.sad, 0);
        }
    }

    #[test]
    fn full_search_counts_valid_candidates() {
        let (cur, reference) = shifted_planes((0, 0));
        let m = full_search(&cur, &reference, 24, 16, &SearchParams::default());
        assert_eq!(m.candidates, 17 * 17);
        // Near the border the window clips.
        let m2 = full_search(&cur, &reference, 0, 0, &SearchParams::default());
        assert_eq!(m2.candidates, 9 * 9);
    }

    #[test]
    fn sad_zero_for_identical_blocks() {
        let p = Plane::filled(32, 32, 99);
        assert_eq!(sad(&p, &p, 8, 8, 0, 0, 16), 0);
        assert_eq!(sad(&p, &p, 8, 8, 4, -3, 16), 0);
    }

    #[test]
    fn three_step_matches_full_search_on_clean_shift() {
        let (cur, reference) = shifted_planes((4, 2));
        let fs = full_search(&cur, &reference, 24, 16, &SearchParams::default());
        let ts = three_step_search(&cur, &reference, 24, 16, &SearchParams::default());
        assert_eq!(fs.mv, ts.mv);
        // TSS probes far fewer candidates.
        assert!(ts.candidates * 4 < fs.candidates);
    }

    #[test]
    #[should_panic(expected = "plane geometry mismatch")]
    fn plane_geometry_checked() {
        let _ = Plane::new(4, 4, vec![0; 15]);
    }
}
