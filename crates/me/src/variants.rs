//! Alternative ME architectures on the same cluster set — the paper's
//! flexibility argument (§1: the arrays "support a number of
//! implementations having different performance characteristics").
//!
//! * [`Systolic1d`] — one row of `N` PEs, one candidate at a time (the 1-D
//!   array family of refs \[12\]–\[14]\: less area, more cycles, higher
//!   required clock rate for the same throughput);
//! * [`Sequential`] — a single PE (AD + accumulator + comparator), the
//!   minimal-area mapping;
//! * fast-search schedules ([`run_schedule`]) that reuse the sequential
//!   engine with three-step / diamond candidate patterns, trading match
//!   quality for cycles — the run-time trade the paper's conclusion invokes
//!   for low-battery operation.

use dsra_core::cluster::{AbsDiffMode, AddOp, ClusterCfg, CompMode};
use dsra_core::error::Result;
use dsra_core::netlist::{Netlist, NodeId};
use dsra_sim::{ExecPlan, InputPort, Simulator};

use crate::harness::{pack_mv, unpack_mv, MeEngine, MeSearchResult};
use crate::reference::{candidate_valid, Match, Plane, SearchParams};

const SAD_WIDTH: u8 = 16;

fn comparator_stage(nl: &mut Netlist, x_src: (NodeId, &str)) -> Result<()> {
    let cmp_en = nl.input("cmp_en", 1)?;
    let cmp_clr = nl.input("cmp_clr", 1)?;
    let cmp_idx = nl.input("cmp_idx", 16)?;
    let comp = nl.cluster(
        "comp",
        ClusterCfg::Comparator {
            width: SAD_WIDTH,
            index_width: 16,
            mode: CompMode::StreamMin,
        },
    )?;
    nl.connect(x_src, (comp, "x"))?;
    nl.connect((cmp_idx, "out"), (comp, "idx"))?;
    nl.connect((cmp_en, "out"), (comp, "en"))?;
    nl.connect((cmp_clr, "out"), (comp, "clr"))?;
    let best = nl.output("best_sad", SAD_WIDTH)?;
    nl.connect((comp, "best"), (best, "in"))?;
    let best_idx = nl.output("best_idx", 16)?;
    nl.connect((comp, "best_idx"), (best_idx, "in"))?;
    Ok(())
}

/// One row of `N` PEs: streams a candidate's rows, one per cycle.
#[derive(Debug)]
pub struct Systolic1d {
    netlist: Netlist,
    n: usize,
    plan: ExecPlan,
    cur_pins: Vec<InputPort>,
    ref_pins: Vec<InputPort>,
}

impl Systolic1d {
    /// Builds the 1-D array for `n`-pixel blocks.
    ///
    /// # Errors
    /// Internal netlist inconsistencies only.
    pub fn new(n: usize) -> Result<Self> {
        assert!((4..=32).contains(&n), "block edge out of range");
        let mut nl = Netlist::new(format!("systolic1d-{n}"));
        let zero8 = nl.constant("zero8", 0, 8)?;
        let men = nl.input("men", 1)?;
        let mclr = nl.input("mclr", 1)?;
        let mut chain_prev: Option<NodeId> = None;
        for j in 0..n {
            let curj = nl.input(format!("cur{j}"), 8)?;
            let refj = nl.input(format!("ref{j}"), 8)?;
            let ad = nl.cluster(
                format!("ad{j}"),
                ClusterCfg::AbsDiff {
                    width: 8,
                    mode: AbsDiffMode::AbsDiff,
                },
            )?;
            nl.connect((curj, "out"), (ad, "a"))?;
            nl.connect((refj, "out"), (ad, "b"))?;
            let wide = nl.concat(format!("w{j}"), &[(ad, "y"), (zero8, "out")])?;
            let add = nl.cluster(
                format!("chain{j}"),
                ClusterCfg::AddAcc {
                    width: SAD_WIDTH,
                    op: AddOp::Add,
                    accumulate: false,
                },
            )?;
            nl.connect((wide, "out"), (add, "a"))?;
            if let Some(prev) = chain_prev {
                nl.connect((prev, "y"), (add, "b"))?;
            }
            chain_prev = Some(add);
        }
        let acc = nl.cluster(
            "acc",
            ClusterCfg::AddAcc {
                width: SAD_WIDTH,
                op: AddOp::Add,
                accumulate: true,
            },
        )?;
        nl.connect((chain_prev.expect("n >= 4"), "y"), (acc, "a"))?;
        nl.connect((men, "out"), (acc, "en"))?;
        nl.connect((mclr, "out"), (acc, "clr"))?;
        comparator_stage(&mut nl, (acc, "y"))?;
        let plan = ExecPlan::compile(&nl)?;
        let cur_pins = (0..n)
            .map(|j| InputPort::resolve(&nl, &format!("cur{j}")))
            .collect::<Result<_>>()?;
        let ref_pins = (0..n)
            .map(|j| InputPort::resolve(&nl, &format!("ref{j}")))
            .collect::<Result<_>>()?;
        Ok(Systolic1d {
            netlist: nl,
            n,
            plan,
            cur_pins,
            ref_pins,
        })
    }
}

impl MeEngine for Systolic1d {
    fn name(&self) -> &'static str {
        "1-D systolic (N PE)"
    }

    fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    fn search(
        &self,
        cur: &Plane,
        reference: &Plane,
        bx: usize,
        by: usize,
        params: &SearchParams,
    ) -> Result<MeSearchResult> {
        assert_eq!(params.block, self.n);
        let n = self.n;
        let p = params.range;
        let mut sim = Simulator::with_plan(&self.netlist, &self.plan);
        sim.set("cmp_clr", 1)?;
        sim.step();
        sim.set("cmp_clr", 0)?;
        let mut stats = MeSearchResult {
            best: Match {
                mv: (0, 0),
                sad: 0,
                candidates: 0,
            },
            cycles: 0,
            ref_fetches: 0,
            ref_fetches_naive: 0,
            cur_fetches: 0,
        };
        for dx in -p..=p {
            for dy in -p..=p {
                if !candidate_valid(reference, bx, by, dx, dy, n) {
                    continue;
                }
                stats.best.candidates += 1;
                self.run_candidate_rows(&mut sim, cur, reference, bx, by, dx, dy, &mut stats)?;
                sim.set("cmp_en", 1)?;
                sim.set("cmp_idx", pack_mv(dx, dy, p))?;
                sim.step();
                sim.set("cmp_en", 0)?;
            }
        }
        sim.step();
        finish(&mut sim, p, &mut stats)?;
        Ok(stats)
    }
}

impl Systolic1d {
    /// Streams the `n` rows of one candidate through the 1-D PE row.
    #[allow(clippy::too_many_arguments)]
    fn run_candidate_rows(
        &self,
        sim: &mut Simulator<'_>,
        cur: &Plane,
        reference: &Plane,
        bx: usize,
        by: usize,
        dx: i32,
        dy: i32,
        stats: &mut MeSearchResult,
    ) -> Result<()> {
        let n = self.n;
        sim.set("mclr", 1)?;
        sim.set("men", 0)?;
        sim.step();
        sim.set("mclr", 0)?;
        sim.set("men", 1)?;
        for t in 0..n {
            for j in 0..n {
                sim.drive(self.cur_pins[j], u64::from(cur.at(bx + j, by + t)));
                let rx = (bx as i64 + i64::from(dx)) as usize + j;
                let ry = (by as i64 + i64::from(dy)) as usize + t;
                sim.drive(self.ref_pins[j], u64::from(reference.at(rx, ry)));
            }
            stats.cur_fetches += n as u64;
            stats.ref_fetches += n as u64;
            stats.ref_fetches_naive += n as u64;
            sim.step();
        }
        sim.set("men", 0)?;
        Ok(())
    }
}

fn finish(sim: &mut Simulator<'_>, range: i32, stats: &mut MeSearchResult) -> Result<()> {
    let best_sad = sim.get("best_sad")?;
    let best_idx = sim.get("best_idx")?;
    stats.best.mv = unpack_mv(best_idx, range);
    stats.best.sad = best_sad;
    stats.cycles = sim.cycle();
    Ok(())
}

/// A single-PE engine: one AD, one accumulator, the comparator.
#[derive(Debug)]
pub struct Sequential {
    netlist: Netlist,
    n: usize,
    plan: ExecPlan,
}

impl Sequential {
    /// Builds the single-PE engine for `n`-pixel blocks.
    ///
    /// # Errors
    /// Internal netlist inconsistencies only.
    pub fn new(n: usize) -> Result<Self> {
        let mut nl = Netlist::new("sequential-pe");
        let zero8 = nl.constant("zero8", 0, 8)?;
        let a = nl.input("cur", 8)?;
        let b = nl.input("ref", 8)?;
        let men = nl.input("men", 1)?;
        let mclr = nl.input("mclr", 1)?;
        let ad = nl.cluster(
            "ad",
            ClusterCfg::AbsDiff {
                width: 8,
                mode: AbsDiffMode::AbsDiff,
            },
        )?;
        nl.connect((a, "out"), (ad, "a"))?;
        nl.connect((b, "out"), (ad, "b"))?;
        let wide = nl.concat("w", &[(ad, "y"), (zero8, "out")])?;
        let acc = nl.cluster(
            "acc",
            ClusterCfg::AddAcc {
                width: SAD_WIDTH,
                op: AddOp::Add,
                accumulate: true,
            },
        )?;
        nl.connect((wide, "out"), (acc, "a"))?;
        nl.connect((men, "out"), (acc, "en"))?;
        nl.connect((mclr, "out"), (acc, "clr"))?;
        comparator_stage(&mut nl, (acc, "y"))?;
        let plan = ExecPlan::compile(&nl)?;
        Ok(Sequential {
            netlist: nl,
            n,
            plan,
        })
    }

    /// Evaluates one candidate pixel-serially and feeds the comparator.
    #[allow(clippy::too_many_arguments)]
    fn run_candidate(
        &self,
        sim: &mut Simulator<'_>,
        cur: &Plane,
        reference: &Plane,
        bx: usize,
        by: usize,
        dx: i32,
        dy: i32,
        range: i32,
        stats: &mut MeSearchResult,
    ) -> Result<()> {
        let n = self.n;
        sim.set("mclr", 1)?;
        sim.set("men", 0)?;
        sim.set("cmp_en", 0)?;
        sim.step();
        sim.set("mclr", 0)?;
        sim.set("men", 1)?;
        for y in 0..n {
            for x in 0..n {
                sim.set("cur", u64::from(cur.at(bx + x, by + y)))?;
                let rx = (bx as i64 + i64::from(dx)) as usize + x;
                let ry = (by as i64 + i64::from(dy)) as usize + y;
                sim.set("ref", u64::from(reference.at(rx, ry)))?;
                sim.step();
            }
        }
        stats.cur_fetches += (n * n) as u64;
        stats.ref_fetches += (n * n) as u64;
        stats.ref_fetches_naive += (n * n) as u64;
        sim.set("men", 0)?;
        sim.set("cmp_en", 1)?;
        sim.set("cmp_idx", pack_mv(dx, dy, range))?;
        sim.step();
        sim.set("cmp_en", 0)?;
        stats.best.candidates += 1;
        Ok(())
    }
}

impl MeEngine for Sequential {
    fn name(&self) -> &'static str {
        "sequential (1 PE)"
    }

    fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    fn search(
        &self,
        cur: &Plane,
        reference: &Plane,
        bx: usize,
        by: usize,
        params: &SearchParams,
    ) -> Result<MeSearchResult> {
        assert_eq!(params.block, self.n);
        let p = params.range;
        let mut sim = Simulator::with_plan(&self.netlist, &self.plan);
        sim.set("cmp_clr", 1)?;
        sim.step();
        sim.set("cmp_clr", 0)?;
        let mut stats = empty_stats();
        for dx in -p..=p {
            for dy in -p..=p {
                if !candidate_valid(reference, bx, by, dx, dy, self.n) {
                    continue;
                }
                self.run_candidate(&mut sim, cur, reference, bx, by, dx, dy, p, &mut stats)?;
            }
        }
        sim.step();
        finish(&mut sim, p, &mut stats)?;
        Ok(stats)
    }
}

fn empty_stats() -> MeSearchResult {
    MeSearchResult {
        best: Match {
            mv: (0, 0),
            sad: 0,
            candidates: 0,
        },
        cycles: 0,
        ref_fetches: 0,
        ref_fetches_naive: 0,
        cur_fetches: 0,
    }
}

/// Fast-search candidate schedules runnable on the [`Sequential`] engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Three-step search.
    ThreeStep,
    /// Diamond search (large + small diamond pattern).
    Diamond,
}

/// Runs a fast-search schedule on the sequential engine: the same fabric
/// configuration, a different controller program — the paper's dynamic
/// reconfigurability argument in miniature.
///
/// # Errors
/// Propagates simulator errors.
pub fn run_schedule(
    engine: &Sequential,
    schedule: Schedule,
    cur: &Plane,
    reference: &Plane,
    bx: usize,
    by: usize,
    params: &SearchParams,
) -> Result<MeSearchResult> {
    let p = params.range;
    let n = params.block;
    assert_eq!(n, engine.n);
    let mut sim = Simulator::with_plan(&engine.netlist, &engine.plan);
    sim.set("cmp_clr", 1)?;
    sim.step();
    sim.set("cmp_clr", 0)?;
    let mut stats = empty_stats();
    let mut center = (0i32, 0i32);
    let mut evaluated: std::collections::HashSet<(i32, i32)> = std::collections::HashSet::new();
    let eval = |sim: &mut Simulator<'_>,
                stats: &mut MeSearchResult,
                evaluated: &mut std::collections::HashSet<(i32, i32)>,
                (dx, dy): (i32, i32)|
     -> Result<Option<u64>> {
        if dx.abs() > p
            || dy.abs() > p
            || evaluated.contains(&(dx, dy))
            || !candidate_valid(reference, bx, by, dx, dy, n)
        {
            return Ok(None);
        }
        evaluated.insert((dx, dy));
        engine.run_candidate(sim, cur, reference, bx, by, dx, dy, p, stats)?;
        Ok(Some(crate::reference::sad(
            cur, reference, bx, by, dx, dy, n,
        )))
    };

    let mut best_sad =
        eval(&mut sim, &mut stats, &mut evaluated, (0, 0))?.expect("(0,0) is always valid");
    match schedule {
        Schedule::ThreeStep => {
            for ring in crate::reference::three_step_candidates(p) {
                let mut best_here = center;
                for (ox, oy) in ring {
                    let cand = (center.0 + ox, center.1 + oy);
                    if cand == center {
                        continue;
                    }
                    if let Some(s) = eval(&mut sim, &mut stats, &mut evaluated, cand)? {
                        if s < best_sad {
                            best_sad = s;
                            best_here = cand;
                        }
                    }
                }
                center = best_here;
            }
        }
        Schedule::Diamond => {
            let large = [
                (0, -2),
                (-1, -1),
                (1, -1),
                (-2, 0),
                (2, 0),
                (-1, 1),
                (1, 1),
                (0, 2),
            ];
            let small = [(0, -1), (-1, 0), (1, 0), (0, 1)];
            loop {
                let mut best_here = center;
                for (ox, oy) in large {
                    let cand = (center.0 + ox, center.1 + oy);
                    if let Some(s) = eval(&mut sim, &mut stats, &mut evaluated, cand)? {
                        if s < best_sad {
                            best_sad = s;
                            best_here = cand;
                        }
                    }
                }
                if best_here == center {
                    break;
                }
                center = best_here;
            }
            for (ox, oy) in small {
                let cand = (center.0 + ox, center.1 + oy);
                if let Some(s) = eval(&mut sim, &mut stats, &mut evaluated, cand)? {
                    if s < best_sad {
                        best_sad = s;
                    }
                }
            }
        }
    }
    sim.step();
    finish(&mut sim, p, &mut stats)?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::full_search;
    use crate::systolic2d::Systolic2d;

    fn shifted(w: usize, h: usize, shift: (i32, i32)) -> (Plane, Plane) {
        let pat = |x: i64, y: i64| -> u8 {
            // Non-linear hash so no two displacements alias.
            let h = (x.wrapping_mul(0x9E37_79B9) ^ y.wrapping_mul(0x85EB_CA6B)) as u64;
            ((h ^ (h >> 13)) & 0xFF) as u8
        };
        let mut refd = Vec::new();
        let mut curd = Vec::new();
        for y in 0..h as i64 {
            for x in 0..w as i64 {
                refd.push(pat(x, y));
                curd.push(pat(x + i64::from(shift.0), y + i64::from(shift.1)));
            }
        }
        (Plane::new(w, h, curd), Plane::new(w, h, refd))
    }

    #[test]
    fn one_d_matches_software_reference() {
        let (cur, refp) = shifted(40, 40, (1, -2));
        let params = SearchParams { block: 8, range: 3 };
        let eng = Systolic1d::new(8).unwrap();
        let hw = eng.search(&cur, &refp, 16, 16, &params).unwrap();
        let sw = full_search(&cur, &refp, 16, 16, &params);
        assert_eq!(hw.best.mv, sw.mv);
        assert_eq!(hw.best.sad, sw.sad);
    }

    #[test]
    fn sequential_matches_software_reference() {
        let (cur, refp) = shifted(40, 40, (-2, 1));
        let params = SearchParams { block: 8, range: 3 };
        let eng = Sequential::new(8).unwrap();
        let hw = eng.search(&cur, &refp, 16, 16, &params).unwrap();
        let sw = full_search(&cur, &refp, 16, 16, &params);
        assert_eq!(hw.best.mv, sw.mv);
        assert_eq!(hw.best.sad, sw.sad);
    }

    #[test]
    fn architectures_trade_area_for_cycles() {
        let (cur, refp) = shifted(40, 40, (1, 1));
        let params = SearchParams { block: 8, range: 3 };
        let s2 = Systolic2d::new(8).unwrap();
        let s1 = Systolic1d::new(8).unwrap();
        let s0 = Sequential::new(8).unwrap();
        let r2 = s2.search(&cur, &refp, 16, 16, &params).unwrap();
        let r1 = s1.search(&cur, &refp, 16, 16, &params).unwrap();
        let r0 = s0.search(&cur, &refp, 16, 16, &params).unwrap();
        // Same answer everywhere.
        assert_eq!(r2.best.mv, r1.best.mv);
        assert_eq!(r1.best.mv, r0.best.mv);
        // More PEs, fewer cycles.
        assert!(
            r2.cycles < r1.cycles,
            "2-D {} vs 1-D {}",
            r2.cycles,
            r1.cycles
        );
        assert!(
            r1.cycles < r0.cycles,
            "1-D {} vs seq {}",
            r1.cycles,
            r0.cycles
        );
        // More PEs, more clusters.
        let clusters = |e: &dyn MeEngine| e.report().total_clusters();
        assert!(clusters(&s2) > clusters(&s1));
        assert!(clusters(&s1) > clusters(&s0));
    }

    /// Smooth texture: fast local searches need a SAD landscape that
    /// decreases toward the true displacement (natural video does; white
    /// noise does not).
    fn shifted_smooth(w: usize, h: usize, shift: (i32, i32)) -> (Plane, Plane) {
        let pat = |x: i64, y: i64| -> u8 {
            let fx = x as f64 * 0.35;
            let fy = y as f64 * 0.22;
            (128.0 + 60.0 * (fx.sin() + (fy + 0.3 * fx).cos())) as u8
        };
        let mut refd = Vec::new();
        let mut curd = Vec::new();
        for y in 0..h as i64 {
            for x in 0..w as i64 {
                refd.push(pat(x, y));
                curd.push(pat(x + i64::from(shift.0), y + i64::from(shift.1)));
            }
        }
        (Plane::new(w, h, curd), Plane::new(w, h, refd))
    }

    #[test]
    fn three_step_schedule_cuts_cycles() {
        let (cur, refp) = shifted_smooth(48, 48, (2, 2));
        let params = SearchParams { block: 8, range: 4 };
        let eng = Sequential::new(8).unwrap();
        let full = eng.search(&cur, &refp, 16, 16, &params).unwrap();
        let tss = run_schedule(&eng, Schedule::ThreeStep, &cur, &refp, 16, 16, &params).unwrap();
        assert!(tss.cycles * 2 < full.cycles);
        // Clean shift: TSS finds the same motion vector.
        assert_eq!(tss.best.mv, full.best.mv);
    }

    #[test]
    fn diamond_schedule_finds_clean_shift() {
        let (cur, refp) = shifted_smooth(48, 48, (-2, 1));
        let params = SearchParams { block: 8, range: 4 };
        let eng = Sequential::new(8).unwrap();
        let dia = run_schedule(&eng, Schedule::Diamond, &cur, &refp, 16, 16, &params).unwrap();
        assert_eq!(dia.best.mv, (-2, 1));
    }
}
