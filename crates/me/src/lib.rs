//! # dsra-me — motion-estimation architectures on the ME array
//!
//! The paper's §4: full-search block matching with the SAD criterion,
//! mapped as the low-power 2-D systolic array of Figs. 10–11, plus the 1-D
//! and single-PE alternatives and fast-search controller schedules that
//! demonstrate the array's flexibility.
//!
//! ## Quick tour
//!
//! ```
//! use dsra_me::{full_search, Plane, SearchParams};
//!
//! // A 32×32 gradient plane, and a current frame shifted right by 2 px.
//! let pix = |x: i64, y: i64| ((x * 7 + y * 13) % 251) as u8;
//! let refp = Plane::new(32, 32, (0..32 * 32).map(|i| pix(i % 32, i / 32)).collect());
//! let cur = Plane::new(32, 32, (0..32 * 32).map(|i| pix(i % 32 + 2, i / 32)).collect());
//!
//! // Full-search block matching recovers the displacement exactly.
//! let m = full_search(&cur, &refp, 8, 8, &SearchParams { block: 8, range: 4 });
//! assert_eq!(m.mv, (2, 0));
//! assert_eq!(m.sad, 0);
//! ```

#![warn(missing_docs)]

pub mod harness;
pub mod reference;
pub mod systolic2d;
pub mod variants;

pub use harness::{MeEngine, MeSearchResult};
pub use reference::{full_search, sad, Match, Plane, SearchParams};
pub use systolic2d::{AccumStructure, Systolic2d};
pub use variants::{run_schedule, Schedule, Sequential, Systolic1d};
