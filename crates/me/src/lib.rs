//! # dsra-me — motion-estimation architectures on the ME array
//!
//! The paper's §4: full-search block matching with the SAD criterion,
//! mapped as the low-power 2-D systolic array of Figs. 10–11, plus the 1-D
//! and single-PE alternatives and fast-search controller schedules that
//! demonstrate the array's flexibility.

#![warn(missing_docs)]

pub mod harness;
pub mod reference;
pub mod systolic2d;
pub mod variants;

pub use harness::{MeEngine, MeSearchResult};
pub use reference::{full_search, sad, Match, Plane, SearchParams};
pub use systolic2d::{AccumStructure, Systolic2d};
pub use variants::{run_schedule, Schedule, Sequential, Systolic1d};
