//! Common interface for motion-estimation engines mapped on the ME array.

use dsra_core::error::Result;
use dsra_core::netlist::Netlist;
use dsra_core::report::ResourceReport;

use crate::reference::{Match, Plane, SearchParams};

/// Cycle and memory-traffic measurements of one hardware block search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeSearchResult {
    /// The winning candidate (identical to the software reference).
    pub best: Match,
    /// Clock cycles the search occupied the array.
    pub cycles: u64,
    /// Reference-plane pixels fetched from memory (with the broadcast /
    /// register-delay reuse of Fig. 11).
    pub ref_fetches: u64,
    /// Reference pixels a reuse-free architecture would fetch (each
    /// candidate reads its full window) — the bandwidth-reduction baseline.
    pub ref_fetches_naive: u64,
    /// Current-block pixels fetched.
    pub cur_fetches: u64,
}

impl MeSearchResult {
    /// Memory-bandwidth reduction factor delivered by the reuse network.
    pub fn bandwidth_reduction(&self) -> f64 {
        if self.ref_fetches == 0 {
            return 1.0;
        }
        self.ref_fetches_naive as f64 / self.ref_fetches as f64
    }
}

/// A block-matching architecture mapped onto the ME array.
pub trait MeEngine {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Structural netlist (for resource accounting / place-and-route).
    fn netlist(&self) -> &Netlist;

    /// Runs one full block search, cycle-accurately.
    ///
    /// # Errors
    /// Propagates simulator errors; block/window must lie inside the planes.
    fn search(
        &self,
        cur: &Plane,
        reference: &Plane,
        bx: usize,
        by: usize,
        params: &SearchParams,
    ) -> Result<MeSearchResult>;

    /// Resource usage of the mapping.
    fn report(&self) -> ResourceReport {
        self.netlist().resource_report()
    }
}

/// Packs a candidate displacement into the comparator index word.
pub(crate) fn pack_mv(dx: i32, dy: i32, range: i32) -> u64 {
    (((dx + range) as u64) << 6) | ((dy + range) as u64)
}

/// Unpacks a comparator index word back to a displacement.
pub(crate) fn unpack_mv(idx: u64, range: i32) -> (i32, i32) {
    let dx = ((idx >> 6) & 0x3F) as i32 - range;
    let dy = (idx & 0x3F) as i32 - range;
    (dx, dy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mv_packing_round_trips() {
        for dx in -8..=8 {
            for dy in -8..=8 {
                assert_eq!(unpack_mv(pack_mv(dx, dy, 8), 8), (dx, dy));
            }
        }
    }

    #[test]
    fn bandwidth_reduction_ratio() {
        let r = MeSearchResult {
            best: Match {
                mv: (0, 0),
                sad: 0,
                candidates: 1,
            },
            cycles: 10,
            ref_fetches: 100,
            ref_fetches_naive: 400,
            cur_fetches: 50,
        };
        assert!((r.bandwidth_reduction() - 4.0).abs() < 1e-12);
    }
}
