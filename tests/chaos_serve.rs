//! Integration gate for the E15 chaos layer: under the default fault
//! plan, recovery-on must serve **zero** corrupt results and strictly
//! higher corruption-aware goodput than fault-oblivious serving; a
//! fault-free chaos session must be byte-identical to a plain one (so
//! the pinned E13 digests survive the hook plumbing); and same-seed
//! chaos sessions must be byte-deterministic including the Chrome trace
//! export.

use dsra::chaos::{serve_with_chaos, ChaosConfig, ChaosReport, FaultPlan, RecoveryConfig};
use dsra::runtime::{DctMapping, RuntimeConfig, SocRuntime};
use dsra::service::{serve_trace, standard_tenants, ServiceConfig, TraceConfig};
use dsra::trace::{chrome_trace, EventLog};

use std::sync::OnceLock;

fn runtime() -> SocRuntime {
    SocRuntime::new(RuntimeConfig {
        da_arrays: 2,
        me_arrays: 2,
        mappings: vec![
            DctMapping::BasicDa,
            DctMapping::MixedRom,
            DctMapping::SccFull,
        ],
        ..Default::default()
    })
    .expect("runtime builds")
}

fn trace() -> TraceConfig {
    TraceConfig {
        tenants: standard_tenants(3, 150),
        duration_us: 6_000,
        ..Default::default()
    }
}

fn plan() -> FaultPlan {
    FaultPlan::generate(&ChaosConfig {
        duration_us: 6_000,
        arrays: 4,
        ..Default::default()
    })
}

/// One chaos session, optionally with the recording sink; returns the
/// report and (when recorded) the exported Chrome document.
fn run(recovery: RecoveryConfig, record: bool) -> (ChaosReport, Option<String>) {
    let mut rt = runtime();
    if record {
        rt.set_trace_sink(Box::new(EventLog::new()));
    }
    let report = serve_with_chaos(
        &mut rt,
        &trace(),
        &ServiceConfig::default(),
        &plan(),
        recovery,
    )
    .expect("chaos session");
    let doc = record.then(|| chrome_trace(&rt.take_trace_sink().into_log().expect("recording")));
    (report, doc)
}

fn recovered() -> &'static (ChaosReport, Option<String>) {
    static R: OnceLock<(ChaosReport, Option<String>)> = OnceLock::new();
    R.get_or_init(|| run(RecoveryConfig::default(), true))
}

fn oblivious() -> &'static ChaosReport {
    static O: OnceLock<ChaosReport> = OnceLock::new();
    O.get_or_init(|| run(RecoveryConfig::oblivious(), false).0)
}

#[test]
fn recovery_serves_zero_corrupt_results_and_beats_oblivious() {
    let (rec, _) = recovered();
    let obl = oblivious();

    // Equal offered load and the same fault plan actually biting.
    assert_eq!(rec.service.requests, obl.service.requests);
    assert!(rec.service.requests > 50, "trace must carry real traffic");
    assert_eq!(rec.counts.faults_injected, obl.counts.faults_injected);
    assert!(
        obl.corrupt_served > 0,
        "the default plan must corrupt results the oblivious arm serves"
    );

    // The E15 acceptance gate.
    assert_eq!(
        rec.corrupt_served, 0,
        "recovery must withhold every corrupt result"
    );
    assert!(
        rec.useful_goodput_pct() > obl.useful_goodput_pct(),
        "recovery useful goodput {:.2}% must beat oblivious {:.2}%",
        rec.useful_goodput_pct(),
        obl.useful_goodput_pct()
    );
    // And it must win by actually recovering, not by shedding the work.
    assert!(rec.counts.divergences > 0);
    assert!(rec.counts.retries > 0);
    assert!(rec.counts.quarantines > 0);
}

#[test]
fn chaos_sessions_are_byte_identical_including_the_trace_export() {
    let (a, doc_a) = recovered();
    let (b, doc_b) = run(RecoveryConfig::default(), true);
    assert_eq!(a, &b);
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.service.render(), b.service.render());
    assert_eq!(doc_a.as_deref(), doc_b.as_deref());
    let doc = doc_a.as_deref().expect("recorded session");
    for name in ["\"fault\"", "\"divergence\"", "\"retry\"", "\"quarantine\""] {
        assert!(doc.contains(name), "trace export lacks {name} instants");
    }
}

#[test]
fn a_fault_free_chaos_session_matches_plain_serving_byte_for_byte() {
    // The hook plumbing, the backend decorators and the spot checks must
    // be behaviour-invisible without faults — this is what keeps the
    // pinned E13 digests intact.
    let plain = serve_trace(&mut runtime(), &trace(), &ServiceConfig::default()).expect("plain");
    let empty = serve_with_chaos(
        &mut runtime(),
        &trace(),
        &ServiceConfig::default(),
        &FaultPlan::default(),
        RecoveryConfig::default(),
    )
    .expect("fault-free chaos session");
    assert_eq!(empty.service.digest(), plain.digest());
    assert_eq!(empty.service.render(), plain.render());
    assert_eq!(empty.corrupt_served, 0);
    assert_eq!(empty.counts, Default::default());
    // The faulted session really differs (the plan bit), so the equality
    // above is not vacuous.
    assert_ne!(recovered().0.service.digest(), plain.digest());
}

#[test]
fn chaos_accounting_is_internally_consistent() {
    let (rec, _) = recovered();
    let s = &rec.service;
    assert_eq!(s.requests, s.served + s.shed + s.failed);
    assert_eq!(
        s.served,
        s.outcomes.iter().filter(|o| !o.shed && !o.failed).count()
    );
    assert_eq!(s.failed, rec.counts.failed_jobs as usize);
    // Every corrupted execution was either caught (divergence) or is
    // accounted as a corrupt serve; with per-job checks, none slip by.
    assert!(rec.corrupt_execs <= rec.counts.divergences + rec.corrupt_served as u64);
    assert!(rec.total_execs >= s.served as u64);
}
