//! Golden-vector contract gate (ISSUE 6): both execution backends must
//! reproduce the *committed* fixtures under `crates/backend/fixtures/`,
//! not merely agree with each other — so a regression that corrupts the
//! array simulator and the golden model the same way (a shared-driver bug,
//! a checksum-definition drift) still fails against the pinned values.
//!
//! Regenerate fixtures only after an intentional contract change:
//! `cargo test -p dsra-backend --test contract -- --ignored regen_fixtures`.

use dsra::backend::{ArrayBackend, Backend, DctMapping, GoldenBackend};
use dsra::core::report::ExecOutcome;
use dsra::dct::DaParams;
use dsra::video::{JobPayload, JobSpec, ServiceClass};
use dsra_bench::{parse_json, Json};

fn fixture(name: &str) -> Json {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("crates/backend/fixtures")
        .join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    parse_json(&src).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

fn u64_field(v: &Json, key: &str) -> u64 {
    v.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing numeric field `{key}`")) as u64
}

fn i64_field(v: &Json, key: &str) -> i64 {
    v.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing numeric field `{key}`")) as i64
}

/// Checksums are stored as `0x…` strings: JSON numbers are doubles here
/// and cannot hold a u64 exactly.
fn checksum_field(v: &Json) -> u64 {
    let s = v
        .get("checksum")
        .and_then(Json::as_str)
        .expect("checksum string");
    u64::from_str_radix(s.trim_start_matches("0x"), 16)
        .unwrap_or_else(|e| panic!("bad checksum `{s}`: {e}"))
}

fn both_backends(job: &JobSpec, kernel: &str) -> ExecOutcome {
    let params = DaParams::precise();
    let array = ArrayBackend::default()
        .execute(params, job, kernel)
        .expect("array backend");
    let golden = GoldenBackend::default()
        .execute(params, job, kernel)
        .expect("golden backend");
    assert_eq!(array, golden, "backends diverged on `{kernel}`");
    array
}

#[test]
fn dct_golden_vectors_pin_both_backends() {
    let doc = fixture("dct_vectors.json");
    let vectors = doc.get("vectors").and_then(Json::as_array).unwrap();
    assert_eq!(vectors.len(), 6, "one pinned vector per mapping");
    for v in vectors {
        let kernel = v.get("kernel").and_then(Json::as_str).unwrap();
        let seed = u64_field(v, "seed");
        let amplitude = i64_field(v, "amplitude");
        let job = JobSpec {
            id: 1,
            arrival_cycle: 0,
            class: ServiceClass::Quality,
            payload: JobPayload::DctBlocks {
                blocks: u64_field(v, "blocks") as u16,
                amplitude,
            },
            seed,
        };
        let out = both_backends(&job, kernel);
        assert_eq!(
            out.exec_cycles,
            u64_field(v, "exec_cycles"),
            "`{kernel}` cycle count drifted from the committed fixture"
        );
        assert_eq!(
            out.checksum,
            checksum_field(v),
            "`{kernel}` checksum drifted from the committed fixture"
        );
        // The fixture also pins the first block's quantised coefficients —
        // the human-auditable layer beneath the digest.
        let expected: Vec<i64> = v
            .get("coeffs0_q8")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|c| c.as_f64().unwrap() as i64)
            .collect();
        let mapping = DctMapping::from_name(kernel).unwrap();
        let imp = mapping.build(DaParams::precise()).unwrap();
        let mut rng = dsra::core::rng::SplitMix64::new(seed);
        let x: [i64; 8] =
            std::array::from_fn(|_| rng.next_below(2 * amplitude as u64 + 1) as i64 - amplitude);
        let y = imp.transform(&x).unwrap();
        let got: Vec<i64> = y.iter().map(|c| (c * 256.0).round() as i64).collect();
        assert_eq!(got, expected, "`{kernel}` first-block coefficients drifted");
    }
}

#[test]
fn me_golden_vectors_pin_both_backends() {
    let doc = fixture("me_vectors.json");
    let vectors = doc.get("vectors").and_then(Json::as_array).unwrap();
    assert_eq!(vectors.len(), 3, "three pinned motion searches");
    for v in vectors {
        let size = (u64_field(v, "width") as u16, u64_field(v, "height") as u16);
        let shift = (i64_field(v, "shift_x") as i8, i64_field(v, "shift_y") as i8);
        let block = u64_field(v, "block") as u8;
        let range = u64_field(v, "range") as u8;
        let seed = u64_field(v, "seed");
        let job = JobSpec {
            id: 2,
            arrival_cycle: 0,
            class: ServiceClass::Quality,
            payload: JobPayload::MeSearch {
                size,
                shift,
                block,
                range,
            },
            seed,
        };
        let out = both_backends(&job, &format!("ME {block}"));
        assert_eq!(out.exec_cycles, u64_field(v, "exec_cycles"));
        assert_eq!(out.checksum, checksum_field(v));
        // The pinned motion vector must be recoverable from the planes —
        // and on these noise-free synthetic pairs it is the ground truth.
        let (cur, refp) = dsra::video::me_search_planes(size, shift, seed);
        let b = usize::from(block);
        let (bx, by) = (
            (usize::from(size.0)).saturating_sub(b) / 2,
            (usize::from(size.1)).saturating_sub(b) / 2,
        );
        let sp = dsra::me::SearchParams {
            block: b,
            range: i32::from(range),
        };
        let best = dsra::me::full_search(&cur, &refp, bx, by, &sp);
        let mv = v.get("mv").and_then(Json::as_array).unwrap();
        assert_eq!(i64::from(best.mv.0), mv[0].as_f64().unwrap() as i64);
        assert_eq!(i64::from(best.mv.1), mv[1].as_f64().unwrap() as i64);
        assert_eq!(best.sad, u64_field(v, "sad"));
        assert_eq!(best.candidates, u64_field(v, "candidates"));
    }
}
