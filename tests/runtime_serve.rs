//! Integration gate for the E11 runtime layer through the `dsra` facade:
//! a small mixed queue served across a 4-array pool must be deterministic,
//! cache-friendly and spread across both fabric kinds.

use dsra::runtime::{DctMapping, RuntimeConfig, SocRuntime};
use dsra::video::{generate_job_mix, JobMixConfig};

fn runtime() -> SocRuntime {
    SocRuntime::new(RuntimeConfig {
        da_arrays: 2,
        me_arrays: 2,
        mappings: vec![DctMapping::BasicDa, DctMapping::MixedRom],
        ..Default::default()
    })
    .expect("runtime builds")
}

#[test]
fn serve_small_mix_end_to_end() {
    let jobs = generate_job_mix(JobMixConfig {
        jobs: 30,
        seed: 0xE11,
        ..Default::default()
    });
    let report = runtime().serve(&jobs).expect("serve");
    assert_eq!(report.jobs, 30);
    assert_eq!(report.arrays.len(), 4);

    // Content-addressed caching: at most one serve-time compile (the ME
    // systolic kernel) no matter how many jobs arrive; everything else hits.
    assert!(report.cache.misses <= 1, "cache: {:?}", report.cache);
    assert!(report.cache.hit_rate() > 0.9);

    // Both fabric kinds did work (the default mix contains every job kind).
    let da_jobs: usize = report.arrays[..2].iter().map(|a| a.jobs).sum();
    let me_jobs: usize = report.arrays[2..].iter().map(|a| a.jobs).sum();
    assert_eq!(da_jobs, report.dct_jobs + report.encode_jobs);
    assert_eq!(me_jobs, report.me_jobs);
    assert!(report.total_reconfig_bits > 0, "cold starts write bits");

    // Determinism: a fresh runtime over the same queue reproduces the
    // report byte for byte, worker threads notwithstanding.
    let again = runtime().serve(&jobs).expect("serve again");
    assert_eq!(report.render(), again.render());
    assert_eq!(report.digest(), again.digest());
}
