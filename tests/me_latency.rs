//! E8 — latency and bandwidth behaviour of the 2-D systolic ME array
//! (Figs. 10–11): first SAD after 16 cycles, hardware/software motion-vector
//! agreement across block sizes and ranges, bandwidth reduction from the
//! broadcast + register-delay organisation.

use dsra::me::{full_search, MeEngine, Plane, SearchParams, Systolic2d};
use dsra::sim::Simulator;

fn planes(w: usize, h: usize, shift: (i32, i32)) -> (Plane, Plane) {
    let pat = |x: i64, y: i64| -> u8 {
        let h = (x.wrapping_mul(0x9E37_79B9) ^ y.wrapping_mul(0x85EB_CA6B)) as u64;
        ((h ^ (h >> 13)) & 0xFF) as u8
    };
    let mut refd = Vec::new();
    let mut curd = Vec::new();
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            refd.push(pat(x, y));
            curd.push(pat(x + i64::from(shift.0), y + i64::from(shift.1)));
        }
    }
    (Plane::new(w, h, curd), Plane::new(w, h, refd))
}

#[test]
fn first_sad_ready_after_exactly_block_height_cycles() {
    // Drive the 16-PE-wide array directly: clear, stream the 16 block rows,
    // and check module 0's SAD appears after cycle 16 — "The first round of
    // SAD calculations would take 16 clock cycles" (§4).
    let n = 16usize;
    let eng = Systolic2d::new(n).unwrap();
    let (cur, refp) = planes(48, 48, (0, 0));
    let (bx, by) = (16usize, 16usize);
    let expected = dsra::me::sad(&cur, &refp, bx, by, 0, 0, n);

    let mut sim = Simulator::new(eng.netlist()).unwrap();
    sim.set("mclr", 1).unwrap();
    sim.step();
    sim.set("mclr", 0).unwrap();
    for t in 0..n {
        for j in 0..n {
            sim.set(&format!("cur{j}"), u64::from(cur.at(bx + j, by + t)))
                .unwrap();
            sim.set(&format!("ref{j}"), u64::from(refp.at(bx + j, by + t)))
                .unwrap();
        }
        sim.set("men0", 1).unwrap();
        sim.step();
    }
    // 16 accumulation edges have now happened; one settle cycle exposes the
    // registered SAD.
    sim.set("men0", 0).unwrap();
    sim.step();
    assert_eq!(sim.get("sad0").unwrap(), expected);
    assert_eq!(eng.first_sad_latency(), 16);
}

#[test]
fn hardware_equals_software_across_ranges() {
    let (cur, refp) = planes(64, 64, (3, -2));
    let eng = Systolic2d::new(8).unwrap();
    for range in [1, 2, 4] {
        let params = SearchParams { block: 8, range };
        let hw = eng.search(&cur, &refp, 24, 24, &params).unwrap();
        let sw = full_search(&cur, &refp, 24, 24, &params);
        assert_eq!(hw.best.mv, sw.mv, "range {range}");
        assert_eq!(hw.best.sad, sw.sad, "range {range}");
        assert_eq!(hw.best.candidates, sw.candidates, "range {range}");
    }
}

#[test]
fn cycles_scale_with_search_area() {
    let (cur, refp) = planes(80, 80, (1, 1));
    let eng = Systolic2d::new(8).unwrap();
    let small = eng
        .search(&cur, &refp, 32, 32, &SearchParams { block: 8, range: 2 })
        .unwrap();
    let large = eng
        .search(&cur, &refp, 32, 32, &SearchParams { block: 8, range: 4 })
        .unwrap();
    assert!(large.cycles > small.cycles);
    // 4 candidates per batch: cycle count grows roughly with candidates/4.
    let per_candidate_small = small.cycles as f64 / small.best.candidates as f64;
    let per_candidate_large = large.cycles as f64 / large.best.candidates as f64;
    assert!((per_candidate_small / per_candidate_large) < 2.0);
}

#[test]
fn bandwidth_reduction_grows_with_vertical_batching() {
    // The register pipeline lets 4 vertically adjacent candidates share
    // reference rows: actual fetches ~ (n+19)/4 per candidate-row versus n
    // for naive fetching.
    let (cur, refp) = planes(64, 64, (0, 0));
    let eng = Systolic2d::new(8).unwrap();
    let r = eng
        .search(&cur, &refp, 24, 24, &SearchParams { block: 8, range: 4 })
        .unwrap();
    let reduction = r.bandwidth_reduction();
    assert!(
        reduction > 2.0 && reduction < 4.0,
        "expected ~(4n)/(n+19) * batch-fill, got {reduction}"
    );
}
