//! Cross-implementation functional agreement: all six hardware mappings
//! compute the same transform (within their fixed-point budgets), satisfy
//! DCT invariants, and match the double-precision reference.

use dsra::dct::{all_impls, reference, DaParams, DctImpl};
use proptest::prelude::*;

fn tolerance(name: &str) -> f64 {
    // CORDIC paths re-serialise intermediate values and pay a truncation
    // penalty (see cordic.rs Schedule); pure-DA paths only pay coefficient
    // rounding.
    match name {
        "CORDIC 1" | "CORDIC 2" => 8.0,
        _ => 1.5,
    }
}

#[test]
fn all_impls_agree_with_reference_on_fixed_vectors() {
    let impls = all_impls(DaParams::precise()).unwrap();
    let vectors: [[i64; 8]; 5] = [
        [0; 8],
        [2047; 8],
        [-2048, 2047, -2048, 2047, -2048, 2047, -2048, 2047],
        [100, -50, 25, -12, 6, -3, 1, 0],
        [1, 0, 0, 0, 0, 0, 0, 0],
    ];
    for imp in &impls {
        for x in &vectors {
            let hw = imp.transform(x).unwrap();
            let sw = reference::dct_1d_int(x);
            for (u, (h, s)) in hw.iter().zip(sw.iter()).enumerate() {
                assert!(
                    (h - s).abs() <= tolerance(imp.name()),
                    "{} coeff {u} on {x:?}: {h} vs {s}",
                    imp.name()
                );
            }
        }
    }
}

#[test]
fn impls_agree_pairwise() {
    let impls = all_impls(DaParams::precise()).unwrap();
    let x = [919, -1204, 33, 508, -77, 1800, -900, 263];
    let outputs: Vec<[f64; 8]> = impls.iter().map(|i| i.transform(&x).unwrap()).collect();
    for (i, a) in outputs.iter().enumerate() {
        for (j, b) in outputs.iter().enumerate().skip(i + 1) {
            let tol = tolerance(impls[i].name()) + tolerance(impls[j].name());
            for u in 0..8 {
                assert!(
                    (a[u] - b[u]).abs() <= tol,
                    "{} vs {} coeff {u}: {} vs {}",
                    impls[i].name(),
                    impls[j].name(),
                    a[u],
                    b[u]
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prop_linearity_of_hardware_dct(
        a in proptest::array::uniform8(-800i64..800),
        b in proptest::array::uniform8(-800i64..800),
    ) {
        // DCT(a) + DCT(b) == DCT(a + b) for the exact-DA mappings.
        let imp = dsra::dct::BasicDa::new(DaParams::precise()).unwrap();
        let sum: [i64; 8] = std::array::from_fn(|i| a[i] + b[i]);
        let ya = imp.transform(&a).unwrap();
        let yb = imp.transform(&b).unwrap();
        let ysum = imp.transform(&sum).unwrap();
        for u in 0..8 {
            prop_assert!(
                (ya[u] + yb[u] - ysum[u]).abs() < 1.0,
                "coeff {}: {} + {} vs {}", u, ya[u], yb[u], ysum[u]
            );
        }
    }

    #[test]
    fn prop_parseval_energy_approximately_preserved(
        x in proptest::array::uniform8(-1500i64..1500),
    ) {
        let imp = dsra::dct::SccFull::new(DaParams::precise()).unwrap();
        let y = imp.transform(&x).unwrap();
        let ex: f64 = x.iter().map(|&v| (v * v) as f64).sum();
        let ey: f64 = y.iter().map(|v| v * v).sum();
        // Orthonormal transform: energies match up to fixed-point noise.
        prop_assert!((ex - ey).abs() <= ex * 0.01 + 50.0, "{ex} vs {ey}");
    }
}

#[test]
fn paper_widths_degrade_gracefully() {
    // Fig. 4 widths (8-bit ROMs, 16-bit accumulators) must still produce a
    // usable transform, just noisier — the quality/precision trade §5 cites.
    let precise = dsra::dct::BasicDa::new(DaParams::precise()).unwrap();
    let coarse = dsra::dct::BasicDa::new(DaParams::paper()).unwrap();
    let x = [120, -80, 44, 9, -33, 71, -2, 15];
    let sw = reference::dct_1d_int(&x);
    let hp = precise.transform(&x).unwrap();
    let hc = coarse.transform(&x).unwrap();
    let err = |h: &[f64; 8]| -> f64 {
        h.iter()
            .zip(sw.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    };
    assert!(err(&hp) < err(&hc), "{} vs {}", err(&hp), err(&hc));
    assert!(err(&hc) < 30.0, "coarse error unusable: {}", err(&hc));
}
