//! E4/E5 — the headline comparisons against a generic FPGA, from the
//! paper's introduction (results of refs [1] and [2]):
//!
//! * ME array: ~75 % lower power, ~45 % smaller area, ~23 % better timing;
//! * DA array: ~38 % lower power, ~14 % smaller area, ~54 % better delay.
//!
//! The technology model is calibrated once (dsra-tech); these tests pin the
//! measured ratios to bands around the paper's numbers so regressions in
//! the structural model (LUT mapping, routing, activity) are caught.

use dsra::core::{Fabric, MeshSpec};
use dsra::dct::{BasicDa, DaParams, DctImpl};
use dsra::me::{MeEngine, Systolic2d};
use dsra::sim::Simulator;
use dsra::tech::{evaluate_against_fpga, TechModel};

fn me_activity(nl: &dsra::core::Netlist) -> dsra::sim::Activity {
    let mut sim = Simulator::new(nl).unwrap();
    for c in 0..256u64 {
        for j in 0..8 {
            sim.set(&format!("cur{j}"), (c * 31 + j * 7) % 256).unwrap();
            sim.set(&format!("ref{j}"), (c * 17 + j * 13) % 256)
                .unwrap();
        }
        for m in 0..4 {
            sim.set(&format!("men{m}"), 1).unwrap();
        }
        sim.step();
    }
    sim.activity().clone()
}

fn da_activity(nl: &dsra::core::Netlist) -> dsra::sim::Activity {
    let mut sim = Simulator::new(nl).unwrap();
    for c in 0..256u64 {
        for i in 0..8 {
            sim.set(&format!("x{i}"), (c * 97 + i * 55) % 4096).unwrap();
        }
        sim.set("ctl_load", u64::from(c % 14 == 0)).unwrap();
        sim.set("ctl_sren", 1).unwrap();
        sim.set("ctl_accen", 1).unwrap();
        sim.step();
    }
    sim.activity().clone()
}

#[test]
fn me_array_beats_fpga_in_the_papers_bands() {
    let eng = Systolic2d::new(8).unwrap();
    let act = me_activity(eng.netlist());
    let fabric = Fabric::me_array(26, 20, MeshSpec::mixed());
    let ev = evaluate_against_fpga(eng.netlist(), &fabric, &act, &TechModel::default()).unwrap();
    let c = ev.comparison;
    assert!(
        (65.0..=85.0).contains(&c.power_reduction_pct),
        "ME power reduction {:.1}% (paper: 75%)",
        c.power_reduction_pct
    );
    assert!(
        (37.0..=53.0).contains(&c.area_reduction_pct),
        "ME area reduction {:.1}% (paper: 45%)",
        c.area_reduction_pct
    );
    assert!(
        (13.0..=33.0).contains(&c.timing_improvement_pct),
        "ME timing improvement {:.1}% (paper: 23%)",
        c.timing_improvement_pct
    );
}

#[test]
fn da_array_beats_fpga_in_the_papers_bands() {
    let imp = BasicDa::new(DaParams::precise()).unwrap();
    let act = da_activity(imp.netlist());
    let fabric = Fabric::da_array(16, 12, MeshSpec::mixed());
    let ev = evaluate_against_fpga(imp.netlist(), &fabric, &act, &TechModel::default()).unwrap();
    let c = ev.comparison;
    assert!(
        (28.0..=48.0).contains(&c.power_reduction_pct),
        "DA power reduction {:.1}% (paper: 38%)",
        c.power_reduction_pct
    );
    assert!(
        (6.0..=24.0).contains(&c.area_reduction_pct),
        "DA area reduction {:.1}% (paper: 14%)",
        c.area_reduction_pct
    );
    assert!(
        (44.0..=64.0).contains(&c.timing_improvement_pct),
        "DA delay improvement {:.1}% (paper: 54%)",
        c.timing_improvement_pct
    );
}

#[test]
fn me_gap_exceeds_da_gap_as_in_the_paper() {
    // The paper's qualitative shape: the ME array gains more power/area
    // than the DA array (75 > 38, 45 > 14), while the DA array gains more
    // timing (54 > 23).
    let eng = Systolic2d::new(8).unwrap();
    let me_act = me_activity(eng.netlist());
    let me_fabric = Fabric::me_array(26, 20, MeshSpec::mixed());
    let me =
        evaluate_against_fpga(eng.netlist(), &me_fabric, &me_act, &TechModel::default()).unwrap();

    let imp = BasicDa::new(DaParams::precise()).unwrap();
    let da_act = da_activity(imp.netlist());
    let da_fabric = Fabric::da_array(16, 12, MeshSpec::mixed());
    let da =
        evaluate_against_fpga(imp.netlist(), &da_fabric, &da_act, &TechModel::default()).unwrap();

    assert!(me.comparison.power_reduction_pct > da.comparison.power_reduction_pct);
    assert!(me.comparison.area_reduction_pct > da.comparison.area_reduction_pct);
    assert!(da.comparison.timing_improvement_pct > me.comparison.timing_improvement_pct);
}

#[test]
fn mesh_ablation_reproduces_switch_savings() {
    // E6 — §2: the 8-bit+1-bit mesh needs fewer switches and configuration
    // bits than an equal-capacity fine-grain mesh, on a real DCT netlist.
    let imp = BasicDa::new(DaParams::precise()).unwrap();
    let fabric = Fabric::da_array(16, 12, MeshSpec::mixed());
    let (mixed, fine) = dsra::tech::mesh_ablation(imp.netlist(), &fabric).unwrap();
    assert!(
        fine.config_bits >= 3 * mixed.config_bits,
        "config bits: fine {} vs mixed {}",
        fine.config_bits,
        mixed.config_bits
    );
    assert!(fine.switch_points >= 3 * mixed.switch_points);
    // The saving mechanism: a bus switch gangs 8 pass transistors behind
    // one configuration bit, so config bits shrink much faster than raw
    // transistor count (which may even grow when widths don't fill a bus).
    let cfg_ratio = fine.config_bits as f64 / mixed.config_bits as f64;
    let tx_ratio = fine.transistor_equiv as f64 / mixed.transistor_equiv as f64;
    assert!(
        cfg_ratio > tx_ratio,
        "config sharing should dominate: cfg {cfg_ratio:.2} vs tx {tx_ratio:.2}"
    );
}
