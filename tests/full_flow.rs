//! End-to-end flow test: every DCT mapping goes netlist → placement →
//! routing → bitstream on one shared fabric, and the full encode loop runs
//! on hardware transforms — the complete story of Fig. 1's SoC.

use dsra::core::{place, route, Bitstream, PlacerOptions, RouterOptions};
use dsra::dct::{all_impls, DaParams};
use dsra::me::SearchParams;
use dsra::platform::{standard_da_fabric, Condition};
use dsra::video::{encode_frame, EncodeConfig, Quantizer, SequenceConfig, SyntheticSequence};

#[test]
fn every_impl_places_routes_and_configures_on_the_shared_array() {
    let fabric = standard_da_fabric();
    let mut bitstreams = Vec::new();
    for imp in all_impls(DaParams::precise()).unwrap() {
        let nl = imp.netlist();
        let placement = place(nl, &fabric, PlacerOptions::default())
            .unwrap_or_else(|e| panic!("{} placement failed: {e}", imp.name()));
        let routing = route(nl, &fabric, &placement, RouterOptions::default())
            .unwrap_or_else(|e| panic!("{} routing failed: {e}", imp.name()));
        assert!(routing.stats.track_segments > 0, "{}", imp.name());
        let bs = Bitstream::generate(nl, &fabric, &placement, &routing);
        assert!(bs.total_bits() > 0);
        bitstreams.push((imp.name().to_owned(), bs));
    }
    // All configurations differ pairwise — except MIX ROM vs SCC E/O,
    // which are bit-identical by mathematics, not by accident: Li's
    // exponent mapping (±3^e mod 32) is order-preserving on the odd
    // quarter for N=8, so the skew-circular formulation programs exactly
    // the same 16-word ROM contents as the even/odd matrix split. What the
    // SCC adds is the *shared rotated table* property (verified in
    // dsra-dct's structural tests), which a custom memory macro could
    // exploit for ROM sharing.
    for (i, (na, a)) in bitstreams.iter().enumerate() {
        for (nb, b) in bitstreams.iter().skip(i + 1) {
            let twins =
                (na == "MIX ROM" && nb == "SCC E/O") || (na == "SCC E/O" && nb == "MIX ROM");
            if twins {
                assert_eq!(a.diff_bits(b), 0, "{na} vs {nb} should coincide");
            } else {
                assert!(a.diff_bits(b) > 0, "{na} vs {nb} identical?");
            }
        }
    }
}

#[test]
fn encode_loop_runs_on_every_dct_mapping() {
    let seq = SyntheticSequence::generate(SequenceConfig {
        width: 32,
        height: 32,
        frames: 2,
        noise: 1,
        objects: 1,
        ..Default::default()
    });
    let cfg = EncodeConfig {
        search: SearchParams {
            block: 16,
            range: 2,
        },
        quantizer: Quantizer::uniform(10.0),
    };
    for imp in all_impls(DaParams::precise()).unwrap() {
        let (_, stats) = encode_frame(seq.frame(1), seq.frame(0), imp.as_ref(), &cfg)
            .unwrap_or_else(|e| panic!("{} encode failed: {e}", imp.name()));
        assert!(
            stats.psnr_db > 26.0,
            "{}: PSNR {:.1} dB too low",
            imp.name(),
            stats.psnr_db
        );
    }
}

#[test]
fn policy_conditions_pick_sane_impls() {
    use dsra::platform::{profile_all_impls, select, ReconfigManager, SocConfig};
    use dsra::tech::TechModel;
    let fabric = standard_da_fabric();
    let mut mgr = ReconfigManager::new(SocConfig::default());
    let impls = profile_all_impls(
        DaParams::precise(),
        &fabric,
        &TechModel::default(),
        &mut mgr,
    )
    .unwrap();
    let profiles: Vec<_> = impls.iter().map(|p| p.profile.clone()).collect();
    // Quality: one of the exact-DA mappings (smallest coefficient error).
    let hq = select(&profiles, Condition::HighQuality).unwrap();
    assert!(hq.max_abs_err < 1.0, "{}: err {}", hq.name, hq.max_abs_err);
    // Min area: a 24-cluster column.
    let small = select(&profiles, Condition::MinArea).unwrap();
    assert_eq!(small.clusters, 24);
    // Deadline of 20 cycles/block excludes the two-phase CORDIC paths.
    let fast = select(
        &profiles,
        Condition::Deadline {
            max_cycles_per_block: 20,
        },
    )
    .unwrap();
    assert!(fast.cycles_per_block <= 20);
}
