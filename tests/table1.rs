//! E1 — exact reproduction of Table 1: cluster usage of the DCT
//! implementations, column by column, against the numbers printed in the
//! paper.

use dsra::dct::{all_impls, DaParams};

/// The five tabulated columns of Table 1 (the paper omits the Fig.-4 basic
/// DA, whose structural counts coincide with the SCC column):
/// `(name, [adders, subtracters, shift regs, accs, mem clusters], add-shift
/// total, grand total)`.
const PAPER_TABLE1: [(&str, [u32; 5], u32, u32); 5] = [
    ("MIX ROM", [4, 4, 8, 8, 8], 24, 32),
    ("CORDIC 1", [8, 8, 8, 12, 12], 36, 48),
    ("CORDIC 2", [10, 10, 6, 6, 6], 32, 38),
    ("SCC E/O", [4, 4, 8, 8, 8], 24, 32),
    ("SCC", [0, 0, 8, 8, 8], 16, 24),
];

#[test]
fn table1_matches_paper_exactly() {
    let impls = all_impls(DaParams::precise()).unwrap();
    for (name, row, add_shift_total, total) in PAPER_TABLE1 {
        let imp = impls
            .iter()
            .find(|i| i.name() == name)
            .unwrap_or_else(|| panic!("implementation {name} missing"));
        let r = imp.report();
        assert_eq!(r.table1_row(), row, "{name} row");
        assert_eq!(
            r.add_shift_total(),
            add_shift_total,
            "{name} add-shift total"
        );
        assert_eq!(r.total_clusters(), total, "{name} total clusters");
    }
}

#[test]
fn ordering_of_implementations_by_area_matches_paper() {
    // 48 (CORDIC1) > 38 (CORDIC2) > 32 = 32 (MIX ROM, SCC E/O) > 24 (SCC).
    let impls = all_impls(DaParams::precise()).unwrap();
    let total = |name: &str| {
        impls
            .iter()
            .find(|i| i.name() == name)
            .unwrap()
            .report()
            .total_clusters()
    };
    assert!(total("CORDIC 1") > total("CORDIC 2"));
    assert!(total("CORDIC 2") > total("MIX ROM"));
    assert_eq!(total("MIX ROM"), total("SCC E/O"));
    assert!(total("SCC E/O") > total("SCC"));
}

#[test]
fn mixed_rom_trades_rom_words_for_adders() {
    // §3.2: "the number of words per ROM is reduced to only 16 which is 16
    // times less than the previous implementation but some overhead has
    // been incurred in the form of adders".
    let impls = all_impls(DaParams::precise()).unwrap();
    let by = |name: &str| impls.iter().find(|i| i.name() == name).unwrap().report();
    let basic = by("BASIC DA");
    let mixed = by("MIX ROM");
    assert_eq!(basic.memory_words(), 16 * mixed.memory_words());
    assert_eq!(mixed.table1_row()[0] + mixed.table1_row()[1], 8); // the adder overhead
    assert_eq!(basic.table1_row()[0] + basic.table1_row()[1], 0);
}

#[test]
fn scc_full_drops_adders_for_bigger_roms() {
    // §3.5: "requires 256 words ROM which is 16 times more than the
    // previous implementation but does not require adder/subtracters".
    let impls = all_impls(DaParams::precise()).unwrap();
    let by = |name: &str| impls.iter().find(|i| i.name() == name).unwrap().report();
    let eo = by("SCC E/O");
    let full = by("SCC");
    assert_eq!(full.memory_words(), 16 * eo.memory_words());
    assert_eq!(full.table1_row()[0], 0);
    assert_eq!(full.table1_row()[1], 0);
}
