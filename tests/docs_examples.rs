//! Keeps the documentation honest: exercises README.md's quickstart path
//! end-to-end and checks that cross-file references (the DESIGN.md §4
//! experiment index, the binaries README names) actually exist.

use std::path::Path;

use dsra::core::{place, route, Bitstream, PlacerOptions, RouterOptions};
use dsra::dct::{BasicDa, DaParams, DctImpl};

/// The exact code shown in README.md "Quickstart".
#[test]
fn readme_quickstart() -> Result<(), dsra::core::CoreError> {
    let dct = BasicDa::new(DaParams::precise())?;
    let coeffs = dct.transform(&[100, 50, -25, 0, 10, -60, 30, 5])?;

    let reference = dsra::dct::reference::dct_1d_int(&[100, 50, -25, 0, 10, -60, 30, 5]);
    assert!((coeffs[0] - reference[0]).abs() < 1.0);
    Ok(())
}

/// The pipeline DESIGN.md §1 describes — netlist → place → route →
/// bitstream — works end-to-end on a real kernel mapping.
#[test]
fn design_overview_pipeline() -> Result<(), dsra::core::CoreError> {
    let imp = BasicDa::new(DaParams::precise())?;
    let fabric = dsra::core::Fabric::da_array(16, 12, dsra::core::MeshSpec::mixed());
    let placement = place(imp.netlist(), &fabric, PlacerOptions::default())?;
    let routing = route(imp.netlist(), &fabric, &placement, RouterOptions::default())?;
    let bits = Bitstream::generate(imp.netlist(), &fabric, &placement, &routing);
    assert!(bits.total_bits() > 0);
    Ok(())
}

/// Every experiment binary README's index names must exist, and the
/// DESIGN.md section that `dsra-bench` docs cite must be present.
#[test]
fn experiment_index_references_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let readme = std::fs::read_to_string(root.join("README.md")).expect("README.md exists");
    let design = std::fs::read_to_string(root.join("DESIGN.md")).expect("DESIGN.md exists");

    assert!(
        design.contains("## 4. Experiment index"),
        "DESIGN.md must keep the §4 experiment index crates/bench cites"
    );
    assert!(
        design.contains("## 6. Runtime layer"),
        "DESIGN.md must document the dsra-runtime layer (§6)"
    );
    assert!(
        design.contains("## 7. Power model"),
        "DESIGN.md must document the dsra-power subsystem (§7)"
    );
    assert!(
        design.contains("## 8. Performance engineering"),
        "DESIGN.md must document the hot-path engineering (§8)"
    );
    for anchor in ["ExecPlan", "diff_bits_map", "DiffMatrix", "planning_ms"] {
        assert!(
            design.contains(anchor),
            "DESIGN.md §8 must cover `{anchor}`"
        );
    }
    assert!(
        design.contains("## 9. Streaming service layer"),
        "DESIGN.md must document the dsra-service layer (§9)"
    );
    for anchor in [
        "AdmissionQueue",
        "EdfShed",
        "stream_serve_job",
        "gate_idle_us",
        "wake_backlog",
        "sample_payload",
        "p50_cycles",
        "BENCH_stream.json",
    ] {
        assert!(
            design.contains(anchor),
            "DESIGN.md §9 must cover `{anchor}`"
        );
    }
    assert!(
        design.contains("## 10. Backend contract"),
        "DESIGN.md must document the dsra-backend contract (§10)"
    );
    assert!(
        design.contains("## 11. Observability"),
        "DESIGN.md must document the dsra-trace layer (§11)"
    );
    for anchor in [
        "TraceSink",
        "NoopSink",
        "EventLog",
        "ArrayInterval",
        "EnergyBreakdown",
        "chrome_trace",
        "MetricsRegistry",
        "shed_wait_p99_us",
        "--trace <file>",
    ] {
        assert!(
            design.contains(anchor),
            "DESIGN.md §11 must cover `{anchor}`"
        );
    }
    assert!(
        design.contains("## 12. Online monitoring"),
        "DESIGN.md must document the dsra-monitor layer (§12)"
    );
    for anchor in [
        "MonitorSink",
        "HealthSnapshot",
        "BurnRateConfig",
        "seal_grace_cycles",
        "AlertLog",
        "MonitorAwareAdmission",
        "monitor_replay.rs",
        "trace_report --slo",
        "--metrics <file>",
        "render_prometheus",
    ] {
        assert!(
            design.contains(anchor),
            "DESIGN.md §12 must cover `{anchor}`"
        );
    }
    for anchor in ["--monitor", "--metrics <file>", "--slo", "monitor-shed"] {
        assert!(
            readme.contains(anchor),
            "README must document the monitor surface `{anchor}`"
        );
    }
    assert!(
        design.contains("## 13. Chaos engineering"),
        "DESIGN.md must document the dsra-chaos layer (§13)"
    );
    for anchor in [
        "FaultPlan",
        "install_chaos",
        "ChaosBackend",
        "DispatchHook",
        "spot_check_every",
        "Divergence",
        "stream_serve_job_excluding",
        "stream_quarantine",
        "stream_restore",
        "FaultInjected",
        "ArrayQuarantine",
        "useful goodput",
        "BENCH_chaos.json",
    ] {
        assert!(
            design.contains(anchor),
            "DESIGN.md §13 must cover `{anchor}`"
        );
    }
    for anchor in ["BENCH_chaos.json", "quarantine"] {
        assert!(
            readme.contains(anchor),
            "README must document the chaos surface `{anchor}`"
        );
    }
    assert!(
        design.contains("## 14. Profiling & attribution"),
        "DESIGN.md must document the dsra-profile layer (§14)"
    );
    for anchor in [
        "ProfSink",
        "OpMix",
        "op_mix",
        "ProfileSink",
        "kernel_op_mixes",
        "unrouted_cycles",
        "flamegraph",
        "utilization_tracks",
        "profile_neutrality.rs",
        "BENCH_profile.json",
        "--profile-out <file>",
    ] {
        assert!(
            design.contains(anchor),
            "DESIGN.md §14 must cover `{anchor}`"
        );
    }
    for anchor in ["BENCH_profile.json", "--profile-out <file>", "flamegraph"] {
        assert!(
            readme.contains(anchor),
            "README must document the profiling surface `{anchor}`"
        );
    }
    for anchor in [
        "ArrayBackend",
        "GoldenBackend",
        "CheckBackend",
        "ExecOutcome",
        "run_payload",
        "--backend check",
        "golden_me_search",
    ] {
        assert!(
            design.contains(anchor),
            "DESIGN.md §10 must cover `{anchor}`"
        );
    }
    assert!(
        readme.contains("## Performance"),
        "README must keep the performance table"
    );
    assert!(
        readme.contains("--bench hotpath"),
        "README must point at the hot-path bench CI runs"
    );
    let hotpath = root.join("crates/bench/benches/hotpath.rs");
    assert!(hotpath.is_file(), "hot-path bench must exist");
    assert!(
        readme.contains("`dsra-runtime`"),
        "README crate map must list dsra-runtime"
    );
    assert!(
        readme.contains("`dsra-power`"),
        "README crate map must list dsra-power"
    );
    assert!(
        readme.contains("`dsra-service`"),
        "README crate map must list dsra-service"
    );
    assert!(
        readme.contains("`dsra-backend`"),
        "README crate map must list dsra-backend"
    );
    assert!(
        readme.contains("`dsra-trace`"),
        "README crate map must list dsra-trace"
    );
    assert!(
        readme.contains("`dsra-monitor`"),
        "README crate map must list dsra-monitor"
    );
    assert!(
        readme.contains("`dsra-chaos`"),
        "README crate map must list dsra-chaos"
    );
    assert!(
        readme.contains("`dsra-profile`"),
        "README crate map must list dsra-profile"
    );

    for bin in [
        "table1",
        "dct_accuracy",
        "me_systolic",
        "fpga_compare",
        "mesh_ablation",
        "dynamic_switch",
        "dct_energy",
        "pipeline",
        "soc_serve",
        "battery_serve",
        "stream_serve",
        "chaos_serve",
        "profile_serve",
        "trace_report",
        "bench_diff",
    ] {
        let path = root.join(format!("crates/bench/src/bin/{bin}.rs"));
        assert!(path.is_file(), "README indexes missing binary {bin}");
        assert!(
            readme.contains(&format!("`{bin}`")),
            "README experiment index must mention {bin}"
        );
        assert!(
            design.contains(&format!("`{bin}`")),
            "DESIGN.md §4 must mention {bin}"
        );
    }

    for example in [
        "quickstart",
        "explore_dct_space",
        "motion_search",
        "video_pipeline",
        "dynamic_reconfig",
    ] {
        let path = root.join(format!("examples/{example}.rs"));
        assert!(path.is_file(), "README lists missing example {example}");
    }
}
