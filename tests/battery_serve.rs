//! Integration gate for the E12 power layer: discharging one full
//! battery over chunked serves, the energy-aware policy must serve
//! strictly more jobs than the naive one, and the whole report — energy
//! columns and battery trajectory included — must be byte-identical
//! across runs. The discharge loop is `dsra_bench::discharge_battery`,
//! the same definition the `battery_serve` binary (and its CI smoke run)
//! executes, so this gate and the E12 artifact cannot measure different
//! things.

use dsra::power::Battery;
use dsra::runtime::{
    DctMapping, EnergyAwarePolicy, NaivePolicy, PowerConfig, RuntimeConfig, SchedulePolicy,
    SocRuntime,
};
use dsra::video::{generate_job_mix, JobMixConfig};
use dsra_bench::{discharge_battery, DischargeOutcome};

const CAPACITY_J: f64 = 6.0e8;
const CHUNK_JOBS: u32 = 24;
const MAX_SERVES: u64 = 12;

fn config() -> RuntimeConfig {
    RuntimeConfig {
        da_arrays: 2,
        me_arrays: 2,
        mappings: vec![
            DctMapping::BasicDa,
            DctMapping::MixedRom,
            DctMapping::SccFull,
        ],
        power: PowerConfig {
            battery_capacity_j: CAPACITY_J,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn discharge(policy: Box<dyn SchedulePolicy>) -> DischargeOutcome {
    let base = JobMixConfig {
        jobs: CHUNK_JOBS,
        ..Default::default()
    };
    let out = discharge_battery(config(), policy, base, MAX_SERVES).expect("discharge run");
    assert!(
        out.discharged,
        "battery must discharge within {MAX_SERVES} serves"
    );
    out
}

#[test]
fn energy_aware_policy_serves_more_jobs_per_charge() {
    let naive = discharge(Box::new(NaivePolicy));
    let energy = discharge(Box::new(EnergyAwarePolicy::default()));

    // The E12 acceptance gate: strictly more jobs per full charge.
    assert!(
        energy.jobs_served > naive.jobs_served,
        "energy-aware {} must beat naive {}",
        energy.jobs_served,
        naive.jobs_served
    );

    // The win is made of real, accounted joules: gating shows up, the
    // naive run never gates, and both drain exactly one battery.
    assert!(energy.reports.iter().any(|r| r.energy.gated_cycles > 0));
    assert!(naive.reports.iter().all(|r| r.energy.gated_cycles == 0));
    for out in [&naive, &energy] {
        assert!(
            out.total_j >= CAPACITY_J,
            "drained {} of {CAPACITY_J}",
            out.total_j
        );
        for r in &out.reports {
            // Battery trajectory bookkeeping: samples cover every job,
            // are non-increasing, and end where the idle drain leaves off.
            assert_eq!(r.energy.battery.samples.len(), r.jobs);
            assert!(r
                .energy
                .battery
                .samples
                .windows(2)
                .all(|w| w[1].charge_j <= w[0].charge_j));
            assert!(r.energy.battery.end_j >= 0.0);
            // The per-job energies plus the idle drain are the total.
            let jobs_j: f64 = r.outcomes.iter().map(|o| o.energy_j).sum();
            let total = r.energy.total_j();
            assert!(
                (jobs_j + r.energy.battery.idle_drain_j - total).abs() < 1e-6 * total.max(1.0),
                "energy must decompose into jobs + idle drain"
            );
        }
    }
}

#[test]
fn discharge_run_is_byte_identical_across_runs() {
    let a = discharge(Box::new(EnergyAwarePolicy::default()));
    let b = discharge(Box::new(EnergyAwarePolicy::default()));
    assert_eq!(a.jobs_served, b.jobs_served);
    assert_eq!(a.reports.len(), b.reports.len());
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        // Byte-identical including energy columns and the battery
        // trajectory (digest, human render and JSON all pin it).
        assert_eq!(ra.digest(), rb.digest());
        assert_eq!(ra.render(), rb.render());
        assert_eq!(ra.to_json("E12"), rb.to_json("E12"));
        assert_eq!(ra.energy.battery.samples, rb.energy.battery.samples);
    }
}

#[test]
fn serve_drains_the_runtime_battery_and_recharge_restores_it() {
    let mut rt = SocRuntime::with_policy(config(), Box::new(EnergyAwarePolicy::default()))
        .expect("runtime builds");
    assert_eq!(rt.battery().charge_j(), CAPACITY_J);
    let report = rt
        .serve(&generate_job_mix(JobMixConfig {
            jobs: 8,
            ..Default::default()
        }))
        .expect("serve");
    let expected = Battery::new(CAPACITY_J).charge_j() - report.energy.total_j();
    assert!((rt.battery().charge_j() - expected.max(0.0)).abs() < 1e-6);
    assert!((rt.battery().charge_j() - report.energy.battery.end_j).abs() < 1e-6);
    rt.recharge_full();
    assert_eq!(rt.battery().charge_j(), CAPACITY_J);
}
