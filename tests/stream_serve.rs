//! Integration gate for the E13 streaming layer: at equal offered load
//! the EDF+shedding policy must beat the FIFO-unbounded baseline on p99
//! serve latency *and* SLO-violation rate, and every session must be
//! byte-identical across runs. The latency percentiles come from
//! `dsra_bench::hist` — the same histogram the `stream_serve` binary
//! folds into `BENCH_stream.json`, so this gate and the E13 artifact
//! cannot measure different things.

use dsra::runtime::{DctMapping, RuntimeConfig, SocRuntime};
use dsra::service::{
    serve_trace, standard_tenants, AdmitPolicy, PoolConfig, ServiceConfig, ServiceReport,
    TraceConfig,
};
use dsra_bench::latency_histogram;

use std::sync::OnceLock;

fn runtime() -> SocRuntime {
    SocRuntime::new(RuntimeConfig {
        da_arrays: 1,
        me_arrays: 1,
        mappings: vec![
            DctMapping::BasicDa,
            DctMapping::MixedRom,
            DctMapping::SccFull,
        ],
        ..Default::default()
    })
    .expect("runtime builds")
}

/// A deliberately overloaded trace: 4 tenants offering several times
/// what the 1 DA + 1 ME pool can serve (≈3 µs mean gap per tenant), so
/// backlog — and with it shedding and the policy difference — is
/// guaranteed to appear.
fn overloaded_trace() -> TraceConfig {
    TraceConfig {
        tenants: standard_tenants(4, 3),
        duration_us: 2_000,
        ..Default::default()
    }
}

fn run(policy: AdmitPolicy) -> ServiceReport {
    serve_trace(
        &mut runtime(),
        &overloaded_trace(),
        &ServiceConfig {
            policy,
            pool: PoolConfig::default(),
        },
    )
    .expect("session")
}

/// Sessions are deterministic (pinned below), so the FIFO and EDF runs
/// are computed once and shared across the gates in this file.
fn fifo_report() -> &'static ServiceReport {
    static FIFO: OnceLock<ServiceReport> = OnceLock::new();
    FIFO.get_or_init(|| run(AdmitPolicy::FifoUnbounded))
}

fn edf_report() -> &'static ServiceReport {
    static EDF: OnceLock<ServiceReport> = OnceLock::new();
    EDF.get_or_init(|| run(AdmitPolicy::EdfShed))
}

#[test]
fn edf_with_shedding_beats_fifo_on_p99_and_violation_rate() {
    let fifo = fifo_report();
    let edf = edf_report();

    // Equal offered load: the trace is identical.
    assert_eq!(fifo.requests, edf.requests);
    assert!(fifo.requests > 100, "trace must carry real traffic");
    assert_eq!(fifo.shed, 0, "the baseline never sheds");

    // The E13 acceptance gate.
    let (hf, he) = (latency_histogram(fifo), latency_histogram(edf));
    assert!(
        he.p99() < hf.p99(),
        "EDF p99 {} must beat FIFO p99 {}",
        he.p99(),
        hf.p99()
    );
    assert!(
        edf.violation_pct() < fifo.violation_pct(),
        "EDF violation rate {:.2}% must beat FIFO {:.2}%",
        edf.violation_pct(),
        fifo.violation_pct()
    );
    // The win comes from saying "no": shedding actually engaged, and what
    // was served was mostly worth serving.
    assert!(edf.shed > 0, "overload must trigger shedding");
    assert!(edf.goodput_pct() > fifo.goodput_pct());
}

#[test]
fn streaming_sessions_are_byte_identical_across_runs() {
    let a = edf_report();
    let b = run(AdmitPolicy::EdfShed);
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.render(), b.render());
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.pool, b.pool);
    // The histogram (and therefore BENCH_stream.json's percentile keys)
    // is a pure function of the report.
    assert_eq!(latency_histogram(a), latency_histogram(&b));
}

#[test]
fn report_accounting_is_internally_consistent() {
    let report = edf_report();
    assert_eq!(report.requests, report.served + report.shed);
    assert_eq!(
        report.served,
        report.outcomes.iter().filter(|o| !o.shed).count()
    );
    // Tenant rows partition the outcome rows.
    assert_eq!(
        report.tenants.iter().map(|t| t.submitted).sum::<usize>(),
        report.requests
    );
    for t in &report.tenants {
        assert_eq!(t.submitted, t.served + t.shed);
        assert!(t.violations <= t.served);
    }
    // Energy: per-request attributions never exceed the pool total (the
    // remainder is idle leakage no single request owns).
    let per_request: f64 = report.outcomes.iter().map(|o| o.energy_j).sum();
    assert!(report.pool.total_j() >= per_request);
    assert!(per_request > 0.0);
    // Interactive tenants are the urgent ones: under EDF none of them
    // may fare worse than the service-wide violation rate.
    for t in report
        .tenants
        .iter()
        .filter(|t| t.spec.archetype == "interactive")
    {
        let rate = t.violations as f64 * 100.0 / t.submitted.max(1) as f64;
        assert!(
            rate <= report.violation_pct() + 1e-9,
            "interactive tenant {} violated {rate:.2}% vs service {:.2}%",
            t.spec.id,
            report.violation_pct()
        );
    }
}
