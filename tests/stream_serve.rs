//! Integration gate for the E13 streaming layer: at equal offered load
//! the EDF+shedding policy must beat the FIFO-unbounded baseline on p99
//! serve latency *and* SLO-violation rate, and every session must be
//! byte-identical across runs. The latency percentiles come from
//! `dsra_bench::hist` — the same histogram the `stream_serve` binary
//! folds into `BENCH_stream.json`, so this gate and the E13 artifact
//! cannot measure different things.

use dsra::runtime::{DctMapping, RuntimeConfig, SocRuntime};
use dsra::service::{
    install_monitor, serve_trace, standard_tenants, AdmitPolicy, PoolConfig, ServiceConfig,
    ServiceReport, TraceConfig,
};
use dsra_bench::hist::Histogram;
use dsra_bench::latency_histogram;
use dsra_bench::stream::{LATENCY_BUCKETS, LATENCY_BUCKET_US};
use dsra_trace::NoopSink;

use std::sync::OnceLock;

fn runtime() -> SocRuntime {
    SocRuntime::new(RuntimeConfig {
        da_arrays: 1,
        me_arrays: 1,
        mappings: vec![
            DctMapping::BasicDa,
            DctMapping::MixedRom,
            DctMapping::SccFull,
        ],
        ..Default::default()
    })
    .expect("runtime builds")
}

/// A deliberately overloaded trace: 4 tenants offering several times
/// what the 1 DA + 1 ME pool can serve (≈3 µs mean gap per tenant), so
/// backlog — and with it shedding and the policy difference — is
/// guaranteed to appear. The duration is long enough for the monitor's
/// slow burn window (6 × 250 µs) to fill and latch alerts while
/// arrivals are still flowing, so the monitor-shed gate below exercises
/// the closed loop, not just the EDF fallback.
fn overloaded_trace() -> TraceConfig {
    TraceConfig {
        tenants: standard_tenants(4, 3),
        duration_us: 6_000,
        ..Default::default()
    }
}

fn run(policy: AdmitPolicy) -> ServiceReport {
    let mut rt = runtime();
    let trace = overloaded_trace();
    // `monitor-shed` closes the loop through the online monitor; the
    // other policies serve unobserved, as before.
    let monitor = (policy == AdmitPolicy::MonitorShed)
        .then(|| install_monitor(&mut rt, &trace.tenants, Box::new(NoopSink)));
    serve_trace(
        &mut rt,
        &trace,
        &ServiceConfig {
            policy,
            pool: PoolConfig::default(),
            monitor,
        },
    )
    .expect("session")
}

/// Sessions are deterministic (pinned below), so the FIFO and EDF runs
/// are computed once and shared across the gates in this file.
fn fifo_report() -> &'static ServiceReport {
    static FIFO: OnceLock<ServiceReport> = OnceLock::new();
    FIFO.get_or_init(|| run(AdmitPolicy::FifoUnbounded))
}

fn edf_report() -> &'static ServiceReport {
    static EDF: OnceLock<ServiceReport> = OnceLock::new();
    EDF.get_or_init(|| run(AdmitPolicy::EdfShed))
}

fn monitor_report() -> &'static ServiceReport {
    static MON: OnceLock<ServiceReport> = OnceLock::new();
    MON.get_or_init(|| run(AdmitPolicy::MonitorShed))
}

#[test]
fn edf_with_shedding_beats_fifo_on_p99_and_violation_rate() {
    let fifo = fifo_report();
    let edf = edf_report();

    // Equal offered load: the trace is identical.
    assert_eq!(fifo.requests, edf.requests);
    assert!(fifo.requests > 100, "trace must carry real traffic");
    assert_eq!(fifo.shed, 0, "the baseline never sheds");

    // The E13 acceptance gate.
    let (hf, he) = (latency_histogram(fifo), latency_histogram(edf));
    assert!(
        he.p99() < hf.p99(),
        "EDF p99 {} must beat FIFO p99 {}",
        he.p99(),
        hf.p99()
    );
    assert!(
        edf.violation_pct() < fifo.violation_pct(),
        "EDF violation rate {:.2}% must beat FIFO {:.2}%",
        edf.violation_pct(),
        fifo.violation_pct()
    );
    // The win comes from saying "no": shedding actually engaged, and what
    // was served was mostly worth serving.
    assert!(edf.shed > 0, "overload must trigger shedding");
    assert!(edf.goodput_pct() > fifo.goodput_pct());
}

/// The PR's closed-loop gate: when the burn-rate alerter latches under
/// overload, `monitor-shed` sacrifices best-effort and quality-tier
/// arrivals early — which must buy the latency-critical interactive
/// tenants strictly fewer deadline violations *and* strictly more good
/// serves than plain EDF shedding, cut the service-wide p99 tail, and
/// never worsen interactive p99.
///
/// Interactive p99 itself is capped, not improved: EDF's shed-blown
/// step truncates every served request's latency at its deadline, so
/// under saturating overload both policies pin the interactive tail at
/// the 900 µs budget — the win shows up in *how many* requests make
/// that tail (violations, goodput), and in the service-wide tail,
/// where early-shed background work stops lingering for tens of ms.
#[test]
fn monitor_shed_protects_interactive_tenants_under_overload() {
    let edf = edf_report();
    let mon = monitor_report();
    assert_eq!(edf.requests, mon.requests, "equal offered load");
    assert!(
        mon.shed > edf.shed,
        "the health-driven policy must shed more ({} vs {})",
        mon.shed,
        edf.shed
    );

    let interactive_ids = |r: &ServiceReport| -> Vec<u16> {
        r.tenants
            .iter()
            .filter(|t| t.spec.archetype == "interactive")
            .map(|t| t.spec.id)
            .collect()
    };
    let ids = interactive_ids(edf);
    assert_eq!(ids, interactive_ids(mon));
    assert!(
        !ids.is_empty(),
        "the overload trace has interactive tenants"
    );

    let interactive_p99 = |r: &ServiceReport| -> u64 {
        let mut h = Histogram::new(LATENCY_BUCKET_US, LATENCY_BUCKETS);
        for o in r.outcomes.iter().filter(|o| !o.shed) {
            if ids.contains(&o.tenant) {
                h.record(o.latency_us);
            }
        }
        h.p99()
    };
    let interactive = |r: &ServiceReport| -> (usize, usize) {
        r.tenants
            .iter()
            .filter(|t| t.spec.archetype == "interactive")
            .fold((0, 0), |(viol, good), t| {
                (viol + t.violations, good + t.served - t.violations)
            })
    };
    let ((edf_viol, edf_good), (mon_viol, mon_good)) = (interactive(edf), interactive(mon));
    assert!(
        mon_viol < edf_viol,
        "monitor-shed interactive violations {mon_viol} must beat EDF {edf_viol}"
    );
    assert!(
        mon_good > edf_good,
        "monitor-shed interactive goodput {mon_good} must beat EDF {edf_good}"
    );
    assert!(
        interactive_p99(mon) <= interactive_p99(edf),
        "monitor-shed interactive p99 {} must not regress EDF's {}",
        interactive_p99(mon),
        interactive_p99(edf)
    );
    // The service-wide tail (the histogram behind BENCH_stream.json's
    // p99 key) must come down: early-shed background work no longer
    // serves after queueing for tens of ms.
    let (hm, he) = (latency_histogram(mon), latency_histogram(edf));
    assert!(
        hm.p99() < he.p99(),
        "monitor-shed service p99 {} must beat EDF {}",
        hm.p99(),
        he.p99()
    );
}

#[test]
fn streaming_sessions_are_byte_identical_across_runs() {
    let a = edf_report();
    let b = run(AdmitPolicy::EdfShed);
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.render(), b.render());
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.pool, b.pool);
    // The histogram (and therefore BENCH_stream.json's percentile keys)
    // is a pure function of the report.
    assert_eq!(latency_histogram(a), latency_histogram(&b));
}

#[test]
fn report_accounting_is_internally_consistent() {
    let report = edf_report();
    assert_eq!(report.requests, report.served + report.shed);
    assert_eq!(
        report.served,
        report.outcomes.iter().filter(|o| !o.shed).count()
    );
    // Tenant rows partition the outcome rows.
    assert_eq!(
        report.tenants.iter().map(|t| t.submitted).sum::<usize>(),
        report.requests
    );
    for t in &report.tenants {
        assert_eq!(t.submitted, t.served + t.shed);
        assert!(t.violations <= t.served);
    }
    // Energy: per-request attributions never exceed the pool total (the
    // remainder is idle leakage no single request owns).
    let per_request: f64 = report.outcomes.iter().map(|o| o.energy_j).sum();
    assert!(report.pool.total_j() >= per_request);
    assert!(per_request > 0.0);
    // Interactive tenants are the urgent ones: under EDF none of them
    // may fare worse than the service-wide violation rate.
    for t in report
        .tenants
        .iter()
        .filter(|t| t.spec.archetype == "interactive")
    {
        let rate = t.violations as f64 * 100.0 / t.submitted.max(1) as f64;
        assert!(
            rate <= report.violation_pct() + 1e-9,
            "interactive tenant {} violated {rate:.2}% vs service {:.2}%",
            t.spec.id,
            report.violation_pct()
        );
    }
}
