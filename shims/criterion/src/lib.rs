//! Minimal, offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API this workspace uses
//! (see `shims/README.md`): benchmark groups, `bench_function` /
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark is timed
//! with `std::time::Instant` over a handful of iterations and reported as
//! a one-line mean — no statistics, HTML reports, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier built from a parameter's `Display` form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Identifier from a function name plus parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u32,
    mean: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.iters;
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs `f` under the timer and prints a one-line mean.
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.criterion.iters,
            mean: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "{}/{}: mean {:?} over {} iters",
            self.name, id, b.mean, b.iters
        );
        self
    }

    /// Like [`Self::bench_function`] with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark context.
#[derive(Debug)]
pub struct Criterion {
    iters: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 3 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group(id).bench_function("bench", f);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        let mut runs = 0u32;
        g.sample_size(10)
            .measurement_time(Duration::from_millis(1))
            .bench_function("count", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &21u32, |b, &x| {
            b.iter(|| assert_eq!(x * 2, 42))
        });
        g.finish();
        assert!(runs >= 1);
    }
}
