//! Minimal, deterministic stand-in for the `proptest` crate.
//!
//! Implements exactly the subset of the proptest API this workspace uses
//! (see `shims/README.md`): the `proptest!` macro with optional
//! `#![proptest_config(..)]`, range and `any::<T>()` strategies,
//! `proptest::array::uniform8`, and the `prop_assert*` macros. Sampling is
//! deterministic per test (SplitMix64 seeded from the test name) and there
//! is no shrinking: a failing case panics with the sampled values visible
//! in the assertion message.

/// Test-runner types: the deterministic RNG and the case-count config.
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` sampled inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; 64 keeps the cycle-accurate
            // simulator properties fast while still sweeping the space.
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 generator, seeded deterministically from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (FNV-1a), so each property gets
        /// its own reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..bound` (`bound` must be non-zero).
        pub fn next_below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Strategy trait and the built-in strategies for ranges and arrays.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of sampled values.
    pub trait Strategy {
        /// The type this strategy produces.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (u128::from(rng.next_u64()) * span) >> 64;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (u128::from(rng.next_u64()) * span) >> 64;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start + (rng.next_f64() as $t) * (self.end - self.start);
                    // Narrowing f64→f32 can round the scaled sample up to
                    // exactly `end`; keep the Range contract half-open.
                    if v < self.end { v } else { self.start }
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    /// Full-range strategy for a type, as produced by [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    macro_rules! any_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy yielding a fixed value, mirroring `proptest::strategy::Just`.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// `any::<T>()`, mirroring `proptest::arbitrary`.
pub mod arbitrary {
    use crate::strategy::Any;

    /// Full-range strategy for `T`.
    pub fn any<T>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Array strategies, mirroring `proptest::array`.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[S::Value; 8]` drawing each element from `S`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform8<S>(S);

    /// Eight independent draws from `strategy`.
    pub fn uniform8<S: Strategy>(strategy: S) -> Uniform8<S> {
        Uniform8(strategy)
    }

    impl<S: Strategy> Strategy for Uniform8<S> {
        type Value = [S::Value; 8];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Property-test entry point; supports the `#![proptest_config(..)]`
/// header and both `arg in strategy` and `arg: Type` parameter forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: expands each `fn` item inside `proptest!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $crate::__proptest_case!(__rng, $body, $($args)*);
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Internal: binds one sampled parameter, then recurses.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident, $body:block,) => { $body };
    ($rng:ident, $body:block, $arg:ident in $strat:expr) => {{
        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $body
    }};
    ($rng:ident, $body:block, $arg:ident in $strat:expr, $($rest:tt)*) => {{
        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_case!($rng, $body, $($rest)*)
    }};
    ($rng:ident, $body:block, $arg:ident : $ty:ty) => {{
        let $arg = $crate::strategy::Strategy::sample(
            &$crate::arbitrary::any::<$ty>(), &mut $rng);
        $body
    }};
    ($rng:ident, $body:block, $arg:ident : $ty:ty, $($rest:tt)*) => {{
        let $arg = $crate::strategy::Strategy::sample(
            &$crate::arbitrary::any::<$ty>(), &mut $rng);
        $crate::__proptest_case!($rng, $body, $($rest)*)
    }};
}

/// `prop_assert!` — panics (no shrinking) with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — panics (no shrinking) with both values shown.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — panics (no shrinking) with both values shown.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges_stay_in_bounds");
        for _ in 0..2000 {
            let v = (-2000i64..2000).sample(&mut rng);
            assert!((-2000..2000).contains(&v));
            let w = (33u8..=63).sample(&mut rng);
            assert!((33..=63).contains(&w));
            let f = (-1.9f64..1.9).sample(&mut rng);
            assert!((-1.9..1.9).contains(&f));
            let g = (0.0f32..1.0).sample(&mut rng);
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn uniform8_draws_independent_elements() {
        let mut rng = TestRng::from_name("uniform8");
        let a = crate::array::uniform8(-800i64..800).sample(&mut rng);
        let b = crate::array::uniform8(-800i64..800).sample(&mut rng);
        assert_ne!(a, b);
        assert!(a.iter().all(|v| (-800..800).contains(v)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_mixed_forms(a in -10i64..10, b: u64, c in 1u8..=4) {
            prop_assert!((-10..10).contains(&a));
            prop_assert!((1..=4).contains(&c));
            prop_assert_eq!(b, b);
        }
    }
}
